package dissem_test

import (
	"fmt"
	"testing"

	"lrseluge/internal/dissem"
	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

// fakeHandler is a minimal ObjectHandler: `total` units of `per` packets
// each, all required, no authentication, no signature. Payload bytes encode
// (unit, index) so serving regenerates correct packets.
type fakeHandler struct {
	version  uint16
	total    int
	per      int
	complete int
	have     map[int]bool
}

func newFake(total, per int, preloaded bool) *fakeHandler {
	h := &fakeHandler{version: 1, total: total, per: per, have: map[int]bool{}}
	if preloaded {
		h.complete = total
	}
	return h
}

func (h *fakeHandler) Version() uint16                           { return h.version }
func (h *fakeHandler) TotalUnits() int                           { return h.total }
func (h *fakeHandler) CompleteUnits() int                        { return h.complete }
func (h *fakeHandler) PacketsInUnit(int) int                     { return h.per }
func (h *fakeHandler) NeededInUnit(int) int                      { return h.per }
func (h *fakeHandler) LearnTotal(int)                            {}
func (h *fakeHandler) WantsSig() bool                            { return false }
func (h *fakeHandler) PreVerifySig(*packet.Sig) bool             { return false }
func (h *fakeHandler) IngestSig(*packet.Sig) dissem.IngestResult { return dissem.Stale }
func (h *fakeHandler) SigPacket(packet.NodeID) *packet.Sig       { return nil }
func (h *fakeHandler) Authentic(*packet.Data) bool               { return true }
func (h *fakeHandler) WipeVolatile()                             { h.have = map[int]bool{} }

func (h *fakeHandler) HasPacket(u, idx int) bool {
	if u < h.complete {
		return true
	}
	if u > h.complete {
		return false
	}
	return h.have[idx]
}

func (h *fakeHandler) Ingest(d *packet.Data) dissem.IngestResult {
	u := int(d.Unit)
	if u != h.complete {
		return dissem.Stale
	}
	idx := int(d.Index)
	if h.have[idx] {
		return dissem.Duplicate
	}
	h.have[idx] = true
	if len(h.have) < h.per {
		return dissem.Stored
	}
	h.complete++
	h.have = map[int]bool{}
	return dissem.UnitComplete
}

func (h *fakeHandler) Packets(u int, indices []int, src packet.NodeID) ([]*packet.Data, error) {
	if u >= h.complete {
		return nil, fmt.Errorf("fake: unit %d not held", u)
	}
	out := make([]*packet.Data, 0, len(indices))
	for _, idx := range indices {
		out = append(out, &packet.Data{
			Src: src, Version: h.version, Unit: packet.Unit(u), Index: uint8(idx),
			Payload: []byte{byte(u), byte(idx)},
		})
	}
	return out, nil
}

type harness struct {
	eng   *sim.Engine
	col   *metrics.Collector
	nw    *radio.Network
	nodes []*dissem.Node
	fakes []*fakeHandler
}

func newHarness(t *testing.T, nodes int, loss radio.LossModel, cfg dissem.Config, total, per int) *harness {
	t.Helper()
	eng := sim.New()
	col := metrics.New()
	g, err := topo.Complete(nodes)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := radio.New(eng, g, loss, radio.DefaultConfig(), col, 99)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{eng: eng, col: col, nw: nw}
	for i := 0; i < nodes; i++ {
		fake := newFake(total, per, i == 0)
		policy := dissem.NewUnionPolicy(fake.PacketsInUnit)
		node, err := dissem.NewNode(packet.NodeID(i), nw, cfg, fake, policy, int64(i)+100)
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, node)
		h.fakes = append(h.fakes, fake)
	}
	return h
}

func (h *harness) runAll(t *testing.T, horizon sim.Time) {
	t.Helper()
	for _, n := range h.nodes {
		n.Start()
	}
	h.eng.Run(horizon)
}

func TestTwoNodeDissemination(t *testing.T) {
	h := newHarness(t, 2, radio.NoLoss{}, dissem.DefaultConfig(), 3, 4)
	h.runAll(t, 10*60*sim.Second)
	if !h.nodes[1].Completed() {
		t.Fatalf("receiver did not complete; state %d/%d", h.fakes[1].CompleteUnits(), 3)
	}
	if got, ok := h.col.CompletionTime(1); !ok || got <= 0 {
		t.Fatal("completion not recorded")
	}
	// The base completes at time zero.
	if got, ok := h.col.CompletionTime(0); !ok || got != 0 {
		t.Fatal("preloaded base completion not recorded at t=0")
	}
}

func TestManyReceiversCompleteUnderLoss(t *testing.T) {
	h := newHarness(t, 6, radio.Bernoulli{P: 0.2}, dissem.DefaultConfig(), 2, 4)
	h.runAll(t, 30*60*sim.Second)
	for i, n := range h.nodes {
		if !n.Completed() {
			t.Fatalf("node %d incomplete", i)
		}
	}
}

func TestOnCompleteCallbackFiresOnce(t *testing.T) {
	h := newHarness(t, 2, radio.NoLoss{}, dissem.DefaultConfig(), 2, 2)
	calls := 0
	h.nodes[1].SetOnComplete(func(packet.NodeID, sim.Time) { calls++ })
	h.runAll(t, 10*60*sim.Second)
	if calls != 1 {
		t.Fatalf("onComplete fired %d times", calls)
	}
}

func TestDenialOfReceiptDefenseLimitsServing(t *testing.T) {
	cfg := dissem.DefaultConfig()
	cfg.SNACKServeLimit = 6
	h := newHarness(t, 2, radio.NoLoss{}, cfg, 1, 4)
	for _, n := range h.nodes {
		n.Start()
	}
	// Node 1 completes normally, then we simulate a denial-of-receipt
	// attacker hand-crafting repeated all-ones SNACKs at node 0.
	h.eng.Run(10 * 60 * sim.Second)
	if !h.nodes[1].Completed() {
		t.Fatal("setup: receiver incomplete")
	}
	before := h.col.NodeTx(0)
	bits := packet.NewBitVector(4)
	bits.SetAll()
	for i := 0; i < 50; i++ {
		h.eng.Schedule(sim.Time(i)*sim.Second, func() {
			h.nodes[0].HandlePacket(7, &packet.SNACK{Src: 7, Dest: 0, Version: 1, Unit: 0, Bits: bits})
		})
	}
	h.eng.Run(20 * 60 * sim.Second)
	served := h.col.NodeTx(0) - before
	// Limit 6 with 4-packet requests: at most ~2 requests' worth of data
	// (plus an advertisement or two) before the attacker is ignored.
	if served > 16 {
		t.Fatalf("defense ineffective: victim transmitted %d packets", served)
	}
}

func TestNoDefenseServesRepeatedly(t *testing.T) {
	h := newHarness(t, 2, radio.NoLoss{}, dissem.DefaultConfig(), 1, 4)
	for _, n := range h.nodes {
		n.Start()
	}
	h.eng.Run(10 * 60 * sim.Second)
	before := h.col.NodeTx(0)
	bits := packet.NewBitVector(4)
	bits.SetAll()
	for i := 0; i < 50; i++ {
		h.eng.Schedule(sim.Time(i)*sim.Second, func() {
			h.nodes[0].HandlePacket(7, &packet.SNACK{Src: 7, Dest: 0, Version: 1, Unit: 0, Bits: bits})
		})
	}
	h.eng.Run(20 * 60 * sim.Second)
	served := h.col.NodeTx(0) - before
	if served < 100 {
		t.Fatalf("expected sustained victim load without defense, got %d", served)
	}
}

func TestNewNodeValidation(t *testing.T) {
	eng := sim.New()
	col := metrics.New()
	g, _ := topo.Complete(2)
	nw, _ := radio.New(eng, g, nil, radio.DefaultConfig(), col, 1)
	fake := newFake(1, 1, false)
	if _, err := dissem.NewNode(0, nw, dissem.DefaultConfig(), nil, dissem.NewUnionPolicy(fake.PacketsInUnit), 1); err == nil {
		t.Fatal("nil handler accepted")
	}
	bad := dissem.DefaultConfig()
	bad.RxRetryTimeout = 0
	if _, err := dissem.NewNode(0, nw, bad, fake, dissem.NewUnionPolicy(fake.PacketsInUnit), 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestUpgradeResetsProtocolState(t *testing.T) {
	h := newHarness(t, 2, radio.NoLoss{}, dissem.DefaultConfig(), 2, 2)
	h.runAll(t, 10*60*sim.Second)
	if !h.nodes[1].Completed() {
		t.Fatal("setup: receiver incomplete")
	}
	// Install a "new version" empty handler on the receiver: the node must
	// report incomplete again and re-acquire from scratch.
	fresh := newFake(2, 2, false)
	fresh.version = 1 // same version: only testing the state reset here
	h.nodes[1].Upgrade(fresh, dissem.NewUnionPolicy(fresh.PacketsInUnit))
	if h.nodes[1].Completed() {
		t.Fatal("Upgrade did not clear completion")
	}
	if h.nodes[1].Handler() != dissem.ObjectHandler(fresh) {
		t.Fatal("Upgrade did not install the new handler")
	}
	// The node must be able to complete again from the network.
	h.eng.Run(h.eng.Now() + 10*60*sim.Second)
	if !h.nodes[1].Completed() {
		t.Fatal("node did not re-acquire the object after Upgrade")
	}
}

func TestUpgraderRejectsVersionMismatch(t *testing.T) {
	// An upgrader returning a handler for the WRONG version must be
	// ignored (defense against buggy or confused upgraders).
	h := newHarness(t, 2, radio.NoLoss{}, dissem.DefaultConfig(), 1, 2)
	h.nodes[1].SetUpgrader(func(version uint16) (dissem.ObjectHandler, dissem.TxPolicy, error) {
		wrong := newFake(1, 2, false)
		wrong.version = version + 7
		return wrong, dissem.NewUnionPolicy(wrong.PacketsInUnit), nil
	})
	h.runAll(t, 10*60*sim.Second)
	// Deliver a "newer version" sig packet; the mismatch must be dropped
	// without replacing the handler.
	before := h.nodes[1].Handler()
	h.nodes[1].HandlePacket(9, &packet.Sig{Src: 9, Version: 5, Pages: 3, Signature: make([]byte, 73)})
	h.eng.Run(h.eng.Now() + 10*sim.Second)
	if h.nodes[1].Handler() != before {
		t.Fatal("mismatched upgrader output was installed")
	}
}
