package dissem

import "lrseluge/internal/packet"

// serverList tracks the in-range advertisers a node may request from, as an
// id-sorted slice of (neighbor, advertised complete-unit count) pairs. It
// replaces a map so per-node memory is a few machine words per neighbor and
// iteration is ascending-id by construction — the exact order the previous
// implementation realized by sorting map keys, so candidate lists (and the
// RNG draws they feed) are byte-identical.
type serverList struct {
	entries []serverEntry
}

type serverEntry struct {
	id    packet.NodeID
	units int
}

// find binary-searches for id, returning its index and presence (the index
// is the insertion point when absent).
func (l *serverList) find(id packet.NodeID) (int, bool) {
	lo, hi := 0, len(l.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.entries[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l.entries) && l.entries[lo].id == id
}

// get returns the advertised unit count for id, zero when absent (matching
// a map's zero-value read).
func (l *serverList) get(id packet.NodeID) int {
	if i, ok := l.find(id); ok {
		return l.entries[i].units
	}
	return 0
}

// set inserts or updates id's advertised unit count.
func (l *serverList) set(id packet.NodeID, units int) {
	i, ok := l.find(id)
	if ok {
		l.entries[i].units = units
		return
	}
	l.entries = append(l.entries, serverEntry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = serverEntry{id: id, units: units}
}

// remove deletes id's entry if present.
func (l *serverList) remove(id packet.NodeID) {
	if i, ok := l.find(id); ok {
		l.entries = append(l.entries[:i], l.entries[i+1:]...)
	}
}

// reset empties the list, keeping capacity.
func (l *serverList) reset() { l.entries = l.entries[:0] }
