package dissem

import (
	"lrseluge/internal/detmap"
	"lrseluge/internal/packet"
)

// UnionPolicy is the Deluge/Seluge transmission policy: "a node in Deluge
// and Seluge simply transmits packets corresponding to the union of bit
// vectors in SNACK packets" (paper §IV-D.3). Units are served lowest-first;
// within a unit, packets go out in index order. Re-requests (after loss)
// simply set the bits again.
type UnionPolicy struct {
	sizeOf func(unit int) int
	units  map[int]packet.BitVector
}

var _ TxPolicy = (*UnionPolicy)(nil)

// NewUnionPolicy creates a union policy; sizeOf maps a unit to its packet
// count (for allocating bit vectors).
func NewUnionPolicy(sizeOf func(unit int) int) *UnionPolicy {
	return &UnionPolicy{sizeOf: sizeOf, units: make(map[int]packet.BitVector)}
}

// OnSNACK implements TxPolicy.
func (p *UnionPolicy) OnSNACK(_ packet.NodeID, u int, bits packet.BitVector) {
	cur, ok := p.units[u]
	if !ok {
		cur = packet.NewBitVector(p.sizeOf(u))
		p.units[u] = cur
	}
	if cur.Len() != bits.Len() {
		return // malformed request; ignore
	}
	cur.Or(bits)
}

// OnDataOverheard implements TxPolicy: another node already broadcast this
// exact packet, so drop it from our queue (data suppression; requesters
// that missed the overheard copy will re-request it).
func (p *UnionPolicy) OnDataOverheard(u, idx int) {
	bits, ok := p.units[u]
	if !ok || idx < 0 || idx >= bits.Len() {
		return
	}
	bits.Set(idx, false)
	if !bits.Any() {
		delete(p.units, u)
	}
}

// Next implements TxPolicy: lowest pending unit, lowest pending index.
func (p *UnionPolicy) Next() (int, int, bool) {
	u, ok := p.lowestPendingUnit()
	if !ok {
		return 0, 0, false
	}
	bits := p.units[u]
	for i := 0; i < bits.Len(); i++ {
		if bits.Get(i) {
			bits.Set(i, false)
			if !bits.Any() {
				delete(p.units, u)
			}
			return u, i, true
		}
	}
	delete(p.units, u)
	return 0, 0, false
}

// Pending implements TxPolicy.
func (p *UnionPolicy) Pending() bool {
	_, ok := p.lowestPendingUnit()
	return ok
}

// DropRequester implements TxPolicy. The union policy does not track
// per-requester state, so this is a no-op; the engine-level defense stops
// feeding new SNACKs from the offender instead.
func (p *UnionPolicy) DropRequester(packet.NodeID) {}

// Reset implements TxPolicy.
func (p *UnionPolicy) Reset() { p.units = make(map[int]packet.BitVector) }

func (p *UnionPolicy) lowestPendingUnit() (int, bool) {
	for _, u := range detmap.SortedKeys(p.units) {
		if p.units[u].Any() {
			return u, true
		}
	}
	return 0, false
}
