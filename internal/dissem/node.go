package dissem

import (
	"fmt"
	"math/rand"

	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/trace"
	"lrseluge/internal/trickle"
	"lrseluge/internal/xrand"
)

// Node is the shared dissemination state machine. It wires an ObjectHandler
// (protocol-specific object state) and a TxPolicy (transmission scheduling)
// to the radio, Trickle advertisements, SNACK requests with suppression,
// retry timers, and the optional denial-of-receipt defense.
type Node struct {
	id      packet.NodeID
	nw      *radio.Network
	eng     *sim.Engine
	rng     *rand.Rand
	cfg     Config
	handler ObjectHandler
	policy  TxPolicy
	trk     *trickle.Trickle
	col     *metrics.Collector
	// tr is picked up from the network at construction; nil disables
	// tracing (every call site is nil-safe).
	tr *trace.Tracer

	// servers lists in-range advertisers and their advertised complete-unit
	// counts, id-sorted (see serverList).
	servers serverList
	// snackCand is the reusable candidate scratch for sendSNACK.
	snackCand []packet.NodeID
	// lastAdvertiser is the most recent neighbor whose advertisement
	// offered units we lack; Deluge directs requests at that node, which
	// concentrates serving (Trickle suppression means mostly one node
	// advertises per neighborhood interval).
	lastAdvertiser packet.NodeID
	hasAdvertiser  bool

	requesting   bool
	snackTimer   sim.Timer
	retryTimer   sim.Timer
	suppressions int
	retries      int

	txActive bool
	txTimer  sim.Timer

	sigPending bool
	// sigSpan brackets the in-flight signature verification; fetchSpan
	// brackets the unit currently being assembled (fetchUnit). Both are
	// inert when tracing is off.
	sigSpan   trace.Span
	fetchSpan trace.Span
	fetchUnit int

	// Denial-of-receipt defense state: data packets requested per
	// (neighbor, unit) and neighbors being ignored. Both maps are nil
	// until the defense first records anything (most nodes at scale never
	// serve an over-limit neighbor), and nil again after a reset.
	served  map[servedKey]int
	ignored map[servedKey]bool

	markForged func(packet.NodeID) bool
	onComplete func(packet.NodeID, sim.Time)
	completed  bool
	// reported latches the first completion: a node that crashes after
	// completing re-derives completed from flash on reboot without firing
	// the completion callback (or collector record) twice.
	reported bool

	// Power-cycle state (fault.Restartable). epoch invalidates callbacks
	// scheduled before a crash (e.g. an in-flight signature verification);
	// crashUnit/refetchArmed drive the re-fetch metric for the unit the
	// crash interrupted.
	down         bool
	epoch        int
	crashUnit    int
	refetchArmed bool

	// Version-upgrade support (see upgrade.go).
	upgrader        Upgrader
	lastSigAnnounce sim.Time
}

type servedKey struct {
	from packet.NodeID
	unit int
}

// maxRetriesBeforeMaintain bounds consecutive unanswered SNACKs before the
// node falls back to MAINTAIN and waits for fresh advertisements.
const maxRetriesBeforeMaintain = 10

// NewNode builds a dissemination node and attaches it to the network at the
// given id. Call Start to begin operation.
func NewNode(id packet.NodeID, nw *radio.Network, cfg Config, handler ObjectHandler, policy TxPolicy, seed int64) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nw == nil || handler == nil || policy == nil {
		return nil, fmt.Errorf("dissem: nil dependency")
	}
	var src rand.Source = rand.NewSource(seed)
	if cfg.CompactRNG {
		src = xrand.NewSplitMix(seed)
	}
	n := &Node{
		id:      id,
		nw:      nw,
		eng:     nw.Engine(),
		rng:     rand.New(src),
		cfg:     cfg,
		handler: handler,
		policy:  policy,
		col:     nw.Collector(),
		tr:      nw.Tracer(),
	}
	trk, err := trickle.New(n.eng, n.rng, cfg.Trickle, n.advertise)
	if err != nil {
		return nil, err
	}
	trk.SetObs(nw.Obs())
	n.trk = trk
	if err := nw.Attach(id, n); err != nil {
		return nil, err
	}
	return n, nil
}

// ID returns the node's identifier.
func (n *Node) ID() packet.NodeID { return n.id }

// Handler exposes the protocol-specific object state (for experiments to
// inspect final images).
func (n *Node) Handler() ObjectHandler { return n.handler }

// Completed reports whether this node holds the full object.
func (n *Node) Completed() bool { return n.completed }

// SetOnComplete registers a callback invoked once when the node completes.
func (n *Node) SetOnComplete(fn func(packet.NodeID, sim.Time)) { n.onComplete = fn }

// SetForgedSource registers a predicate identifying adversarial senders so
// the collector can count any forged packet that authentication fails to
// reject. Used only by adversarial experiments.
func (n *Node) SetForgedSource(fn func(packet.NodeID) bool) { n.markForged = fn }

// Start begins protocol operation: Trickle advertisements and, if the node
// is preloaded (base station), completion bookkeeping.
func (n *Node) Start() {
	n.trk.Start()
	n.checkComplete()
}

// Stop halts all timers.
func (n *Node) Stop() {
	n.trk.Stop()
	n.snackTimer.Stop()
	n.retryTimer.Stop()
	n.txTimer.Stop()
}

// Crash implements fault.Restartable: the mote loses power. All timers stop,
// RAM protocol state (neighbor tables, request/serve state, the in-progress
// unit's partial assembly) is wiped, and the epoch counter voids callbacks
// already scheduled, such as an in-flight signature verification. Flash
// contents — completed units and the verified signature — survive.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	n.epoch++
	// Count the RAM-resident packets of the in-progress unit before the wipe
	// discards them; each must be fetched again after reboot.
	lost := 0
	cu := n.handler.CompleteUnits()
	if total := n.handler.TotalUnits(); total == 0 || cu < total {
		for idx := 0; idx < n.handler.PacketsInUnit(cu); idx++ {
			if n.handler.HasPacket(cu, idx) {
				lost++
			}
		}
	}
	n.col.RecordCrash(n.id, n.eng.Now(), lost)
	n.Stop()
	n.handler.WipeVolatile()
	n.policy.Reset()
	n.servers.reset()
	n.served = nil
	n.ignored = nil
	n.hasAdvertiser = false
	n.setRequesting(false)
	n.suppressions = 0
	n.retries = 0
	n.setTxActive(false)
	n.sigPending = false
	// In-flight spans die with the RAM state: their begins stay
	// unterminated in the trace (the analyzer drops unpaired spans), which
	// is the honest record of work a crash destroyed.
	n.sigSpan = trace.Span{}
	n.fetchSpan = trace.Span{}
	n.completed = false
	n.crashUnit = cu
	n.refetchArmed = lost > 0
}

// Reboot implements fault.Restartable: the mote powers back on and rejoins
// the protocol from its flash-resident state, exactly as a real reboot
// re-reads completed pages from external flash. A node that had completed
// re-derives completion from flash without re-firing its callback.
func (n *Node) Reboot() {
	if !n.down {
		return
	}
	n.down = false
	n.col.RecordReboot(n.id, n.eng.Now())
	n.trk.Start()
	n.checkComplete()
}

// advertise is the Trickle transmit callback (MAINTAIN state).
func (n *Node) advertise() {
	n.nw.Broadcast(n.id, &packet.Adv{
		Src:     n.id,
		Version: n.handler.Version(),
		Units:   packet.Unit(n.handler.CompleteUnits()),
		Total:   packet.Unit(n.handler.TotalUnits()),
	})
}

// HandlePacket implements radio.Receiver.
func (n *Node) HandlePacket(from packet.NodeID, p packet.Packet) {
	if n.down {
		// A packet already in flight when the node lost power: the radio
		// blocks future deliveries via the fault overlay, but propagation-
		// delayed deliveries scheduled before the crash still land here.
		return
	}
	switch pkt := p.(type) {
	case *packet.Adv:
		n.handleAdv(from, pkt)
	case *packet.SNACK:
		n.handleSNACK(from, pkt)
	case *packet.Data:
		n.handleData(from, pkt)
	case *packet.Sig:
		n.handleSig(from, pkt)
	}
}

func (n *Node) handleAdv(from packet.NodeID, a *packet.Adv) {
	switch {
	case a.Version < n.handler.Version():
		// A stale neighbor: announce our signature packet so it can
		// authenticate the newer version and upgrade (rate-limited).
		n.trk.HearInconsistent()
		n.announceSig()
		return
	case a.Version > n.handler.Version():
		// A newer version exists; we upgrade only once its signature
		// packet arrives and verifies (see upgrade.go).
		n.trk.HearInconsistent()
		return
	}
	if a.Total > 0 {
		n.handler.LearnTotal(int(a.Total))
		n.checkComplete()
	}
	mine := n.handler.CompleteUnits()
	theirs := int(a.Units)
	switch {
	case theirs == mine:
		n.trk.HearConsistent()
	default:
		n.trk.HearInconsistent()
	}
	if theirs > mine {
		n.servers.set(from, theirs)
		// Stick with the current server while it remains useful; hopping
		// between advertisers scatters requests and duplicates serving.
		if !n.hasAdvertiser || n.servers.get(n.lastAdvertiser) <= mine {
			n.lastAdvertiser = from
			n.hasAdvertiser = true
		}
		n.maybeStartRequest()
	} else {
		n.servers.remove(from)
		if n.hasAdvertiser && n.lastAdvertiser == from {
			n.hasAdvertiser = false
		}
	}
}

func (n *Node) handleSNACK(from packet.NodeID, s *packet.SNACK) {
	if s.Version != n.handler.Version() {
		return
	}
	unit := int(s.Unit)
	if s.Dest != n.id {
		// Overheard request from another node: Deluge-style suppression.
		// A request for our unit (or an earlier one) means data we can
		// overhear is about to flow, so push our own SNACK back.
		if n.requesting && unit <= n.handler.CompleteUnits() && n.suppressions < n.cfg.MaxSuppressions {
			if n.snackTimer.Stop() {
				n.suppressions++
				n.scheduleSNACK(n.backoff())
			}
		}
		return
	}
	// Addressed to us: serve if we can.
	if unit >= n.handler.CompleteUnits() {
		return // we do not possess that unit (stale advertisement)
	}
	key := servedKey{from: from, unit: unit}
	if n.ignored[key] {
		return
	}
	if n.cfg.SNACKServeLimit > 0 {
		if n.served == nil {
			n.served = make(map[servedKey]int)
		}
		n.served[key] += s.Bits.Count()
		if n.served[key] > n.cfg.SNACKServeLimit {
			// Denial-of-receipt defense (paper §IV-E): this neighbor has
			// requested implausibly many packets of one unit; ignore it.
			if n.ignored == nil {
				n.ignored = make(map[servedKey]bool)
			}
			n.ignored[key] = true
			n.policy.DropRequester(from)
			return
		}
	}
	n.policy.OnSNACK(from, unit, s.Bits)
	n.startTx()
}

func (n *Node) handleData(from packet.NodeID, d *packet.Data) {
	if d.Version != n.handler.Version() {
		return
	}
	unit := int(d.Unit)
	next := n.handler.CompleteUnits()
	switch {
	case n.completed || unit < next:
		// Data for a unit we already hold. Verify it BEFORE letting it
		// influence behavior: a forged packet must not suppress our
		// transmissions or postpone our requests.
		if !n.handler.Authentic(d) {
			n.col.RecordAuthDrop()
			n.tr.Drop(n.id, from, d, trace.DropAuth)
			return
		}
		// Another node is serving this unit: drop any queued duplicate
		// of ours (data suppression), note consistent network activity
		// (advertisement suppression), and hold a pending SNACK back —
		// the neighborhood is still working on lower pages, and joining
		// the next round later lets the scheduler aggregate requests.
		n.policy.OnDataOverheard(unit, int(d.Index))
		n.postponePendingSNACK()
		n.trk.HearConsistent()
	case unit > next:
		// Page-by-page rule: we cannot authenticate packets beyond the
		// next unit (their hash images are not yet known), so they are
		// dropped with no effect (paper §IV-E).
		n.tr.Drop(n.id, from, d, trace.DropStale)
	default: // unit == next
		heldBefore := n.tr.Enabled() && n.heldAny(unit)
		res := n.handler.Ingest(d)
		if n.refetchArmed {
			if unit == n.crashUnit && (res == Stored || res == UnitComplete) {
				// Re-downloading a packet the crash wiped from RAM: the
				// measurable recovery cost of losing partial-unit state.
				n.col.RecordRefetch()
			}
			if n.handler.CompleteUnits() > n.crashUnit {
				n.refetchArmed = false
			}
		}
		if n.tr.Enabled() && !heldBefore && (res == Stored || res == UnitComplete) {
			n.tr.UnitEvent(trace.KindUnitFirst, n.id, unit)
			n.beginFetchSpan(unit)
		}
		switch res {
		case Rejected:
			n.col.RecordAuthDrop()
			n.tr.Drop(n.id, from, d, trace.DropAuth)
		case Duplicate:
			n.tr.Drop(n.id, from, d, trace.DropDuplicate)
			n.policy.OnDataOverheard(unit, int(d.Index))
			n.postponePendingSNACK()
			n.progress()
		case Stored:
			n.policy.OnDataOverheard(unit, int(d.Index))
			n.postponePendingSNACK()
			n.noteForged(from, res)
			n.progress()
		case UnitComplete:
			if n.tr.Enabled() {
				// The simulator's Ingest recovers, verifies and commits
				// the unit atomically, so the three milestones share one
				// timestamp; real motes would spread them out.
				n.tr.UnitEvent(trace.KindUnitDecodable, n.id, unit)
				n.tr.UnitEvent(trace.KindUnitVerified, n.id, unit)
				n.tr.UnitEvent(trace.KindUnitFlashed, n.id, unit)
			}
			n.endFetchSpan(unit)
			n.noteForged(from, res)
			n.unitComplete()
		}
	}
}

// postponePendingSNACK pushes back a not-yet-sent SNACK while authenticated
// data is in the air (Deluge request suppression).
func (n *Node) postponePendingSNACK() {
	if n.requesting && n.snackTimer.Stop() {
		n.scheduleSNACK(n.backoff())
	}
}

func (n *Node) handleSig(from packet.NodeID, s *packet.Sig) {
	if s.Version > n.handler.Version() {
		n.handleNewerSig(from, s)
		return
	}
	if s.Version != n.handler.Version() {
		return
	}
	if !n.handler.WantsSig() || n.sigPending {
		return
	}
	if !n.handler.PreVerifySig(s) {
		// Weak authenticator (puzzle) rejected the packet: one cheap hash,
		// no signature verification charged.
		n.tr.Drop(n.id, from, s, trace.DropPuzzle)
		return
	}
	// Charge the expensive verification as virtual time (1.12 s ECDSA on a
	// Tmote Sky, paper §III-A). The epoch guard voids the verification if
	// the node loses power while it is in progress.
	n.sigPending = true
	n.sigSpan = n.tr.Begin(n.id, "sig-verify", trace.NoUnit)
	epoch := n.epoch
	n.eng.Schedule(n.cfg.SigVerifyDelay, func() {
		if n.down || n.epoch != epoch {
			return
		}
		n.sigPending = false
		n.sigSpan.End()
		n.sigSpan = trace.Span{}
		res := n.handler.IngestSig(s)
		switch res {
		case Rejected:
			n.col.RecordAuthDrop()
			n.tr.SigResult(n.id, from, false)
		case UnitComplete:
			n.tr.SigResult(n.id, from, true)
			n.noteForged(from, res)
			n.unitComplete()
		}
	})
}

func (n *Node) noteForged(from packet.NodeID, res IngestResult) {
	if n.markForged != nil && n.markForged(from) && (res == Stored || res == UnitComplete) {
		n.col.RecordForgedAccepted()
	}
}

// setRequesting flips the RX state machine, tracing the MAINTAIN<->RX
// transition when the value actually changes.
func (n *Node) setRequesting(v bool) {
	if n.requesting == v {
		return
	}
	n.requesting = v
	if v {
		n.tr.State(n.id, "rx", trace.StateMaintain, trace.StateRx)
	} else {
		n.tr.State(n.id, "rx", trace.StateRx, trace.StateMaintain)
	}
}

// setTxActive flips the TX state machine, tracing the MAINTAIN<->TX
// transition when the value actually changes.
func (n *Node) setTxActive(v bool) {
	if n.txActive == v {
		return
	}
	n.txActive = v
	if v {
		n.tr.State(n.id, "tx", trace.StateMaintain, trace.StateTx)
	} else {
		n.tr.State(n.id, "tx", trace.StateTx, trace.StateMaintain)
	}
}

// heldAny reports whether any packet of the unit is already stored; used to
// detect the unit's first packet when tracing (gated on Enabled, so the
// scan costs nothing in untraced runs).
func (n *Node) heldAny(unit int) bool {
	for idx := 0; idx < n.handler.PacketsInUnit(unit); idx++ {
		if n.handler.HasPacket(unit, idx) {
			return true
		}
	}
	return false
}

// beginFetchSpan opens the page-fetch span for the unit being assembled.
func (n *Node) beginFetchSpan(unit int) {
	if !n.tr.Enabled() || (n.fetchSpan.Active() && n.fetchUnit == unit) {
		return
	}
	n.fetchSpan = n.tr.Begin(n.id, "page-fetch", unit)
	n.fetchUnit = unit
}

// endFetchSpan closes the page-fetch span if it covers this unit.
func (n *Node) endFetchSpan(unit int) {
	if n.fetchSpan.Active() && n.fetchUnit == unit {
		n.fetchSpan.End()
		n.fetchSpan = trace.Span{}
	}
}

// maybeStartRequest enters RX if a neighbor has units we lack.
func (n *Node) maybeStartRequest() {
	if n.completed || n.requesting {
		return
	}
	if !n.haveServer() {
		return
	}
	n.setRequesting(true)
	n.suppressions = 0
	n.retries = 0
	n.scheduleSNACK(n.backoff())
}

func (n *Node) haveServer() bool {
	mine := n.handler.CompleteUnits()
	// servers holds only in-range advertisers; trip count is node degree.
	for i := range n.servers.entries {
		if n.servers.entries[i].units > mine {
			return true
		}
	}
	return false
}

func (n *Node) backoff() sim.Time {
	span := int64(n.cfg.RxBackoffMax - n.cfg.RxBackoffMin)
	if span <= 0 {
		return n.cfg.RxBackoffMin
	}
	return n.cfg.RxBackoffMin + sim.Time(n.rng.Int63n(span+1))
}

func (n *Node) scheduleSNACK(d sim.Time) {
	n.snackTimer.Stop()
	n.snackTimer = n.eng.Schedule(d, n.sendSNACK)
}

func (n *Node) sendSNACK() {
	if n.completed || !n.requesting {
		return
	}
	mine := n.handler.CompleteUnits()
	// Pick a server that advertises more units than we have, uniformly at
	// random for load spreading.
	// serverList iterates in ascending-id order, which keeps the candidate
	// list, and therefore the rng draw below, identical across runs (it is
	// the same order the map-based implementation realized by sorting keys).
	candidates := n.snackCand[:0]
	for i := range n.servers.entries {
		e := &n.servers.entries[i]
		if e.units > mine {
			candidates = append(candidates, e.id)
		}
	}
	n.snackCand = candidates
	if len(candidates) == 0 {
		n.setRequesting(false)
		return
	}
	// Prefer the advertiser we heard most recently (Deluge requests "from
	// that neighbor"); otherwise pick uniformly among candidates.
	server := packet.NodeID(0)
	if n.hasAdvertiser && n.servers.get(n.lastAdvertiser) > mine {
		server = n.lastAdvertiser
	} else {
		server = candidates[n.rng.Intn(len(candidates))]
	}

	unit := mine
	npkts := n.handler.PacketsInUnit(unit)
	bits := packet.NewBitVector(npkts)
	for idx := 0; idx < npkts; idx++ {
		if !n.handler.HasPacket(unit, idx) {
			bits.Set(idx, true)
		}
	}
	if !bits.Any() {
		// Shouldn't happen: a unit with nothing missing would be complete.
		return
	}
	n.nw.Broadcast(n.id, &packet.SNACK{
		Src:     n.id,
		Dest:    server,
		Version: n.handler.Version(),
		Unit:    packet.Unit(unit),
		Bits:    bits,
	})
	n.armRetry()
}

func (n *Node) armRetry() {
	n.retryTimer.Stop()
	// Exponential backoff on consecutive unanswered retries keeps SNACK
	// storms bounded when losses are heavy (a lost SNACK costs a timeout,
	// not a flood).
	timeout := n.cfg.RxRetryTimeout
	for i := 0; i < n.retries && i < 2; i++ {
		timeout *= 2
	}
	n.retryTimer = n.eng.Schedule(timeout, func() {
		if n.completed || !n.requesting {
			return
		}
		n.retries++
		if n.retries > maxRetriesBeforeMaintain {
			// Give up; wait for fresh advertisements (MAINTAIN).
			n.setRequesting(false)
			n.servers.reset()
			n.trk.Reset()
			return
		}
		n.scheduleSNACK(n.backoff())
	})
}

// progress notes that the current unit advanced (a useful packet arrived),
// resetting the retry counter.
func (n *Node) progress() {
	n.retries = 0
	n.armRetry()
}

func (n *Node) unitComplete() {
	n.retries = 0
	n.suppressions = 0
	n.retryTimer.Stop()
	n.trk.Reset() // our state changed; advertise promptly
	n.checkComplete()
	if n.completed {
		n.setRequesting(false)
		return
	}
	if n.haveServer() {
		n.setRequesting(true)
		n.scheduleSNACK(n.backoff())
	} else {
		n.setRequesting(false)
	}
}

func (n *Node) checkComplete() {
	if n.completed {
		return
	}
	total := n.handler.TotalUnits()
	if total > 0 && n.handler.CompleteUnits() >= total {
		n.completed = true
		n.setRequesting(false)
		n.retryTimer.Stop()
		n.snackTimer.Stop()
		if n.reported {
			return
		}
		n.reported = true
		now := n.eng.Now()
		n.col.RecordCompletion(n.id, now)
		n.tr.Complete(n.id)
		if n.onComplete != nil {
			n.onComplete(n.id, now)
		}
	}
}

// startTx begins the serve loop if it is not already running (TX state).
// The first transmission of an idle server waits out an aggregation window
// so SNACKs from several neighbors accumulate before the burst begins.
func (n *Node) startTx() {
	if n.txActive {
		return
	}
	n.setTxActive(true)
	if n.cfg.TxAggregationDelay > 0 {
		n.txTimer = n.eng.Schedule(n.cfg.TxAggregationDelay, n.txStep)
		return
	}
	n.scheduleTxStep()
}

func (n *Node) scheduleTxStep() {
	// Pace on our own transmitter: next step when the radio frees up, plus
	// a random jitter so concurrent servers interleave and overhear each
	// other's packets (enabling data suppression) instead of transmitting
	// identical bursts in lockstep.
	delay := n.cfg.TxSpacing
	if n.cfg.TxJitterMax > 0 {
		delay += sim.Time(n.rng.Int63n(int64(n.cfg.TxJitterMax) + 1))
	}
	if busy := n.nw.TxBusyUntil(n.id); busy > n.eng.Now() {
		delay += busy - n.eng.Now()
	}
	n.txTimer = n.eng.Schedule(delay, n.txStep)
}

func (n *Node) txStep() {
	if !n.policy.Pending() {
		n.setTxActive(false)
		return
	}
	unit, idx, ok := n.policy.Next()
	if !ok {
		n.setTxActive(false)
		return
	}
	if sig := n.handler.SigPacket(n.id); sig != nil && unit == 0 && n.handler.PacketsInUnit(0) == 1 {
		n.nw.Broadcast(n.id, sig)
	} else {
		pkts, err := n.handler.Packets(unit, []int{idx}, n.id)
		if err != nil || len(pkts) == 0 {
			// The unit became unservable (should not happen); drop work.
			n.scheduleTxStep()
			return
		}
		n.nw.Broadcast(n.id, pkts[0])
	}
	n.scheduleTxStep()
}
