// Package dissem implements the dissemination state machine shared by
// Deluge, Seluge and LR-Seluge: Trickle-paced advertisements (MAINTAIN),
// SNACK-driven page requests with overhearing and suppression (RX), and
// request-driven serving (TX), per paper §IV-D.
//
// The three protocols differ in (a) how an object decomposes into units and
// packets, (b) how packets are authenticated and pages recovered, and
// (c) which packets a server chooses to transmit. Those three concerns are
// delegated to the ObjectHandler and TxPolicy interfaces; everything else —
// timers, suppression, retry, the denial-of-receipt defense — is shared.
//
// Unit numbering: for secure protocols unit 0 is the signature packet, unit
// 1 the hash page M0, and units 2..g+1 the image pages 1..g. Plain Deluge
// numbers its pages 0..g-1 directly. The engine is agnostic: it always
// requests unit CompleteUnits() next.
package dissem

import (
	"lrseluge/internal/packet"
)

// IngestResult classifies what an incoming packet did to node state.
type IngestResult int

// Ingest outcomes.
const (
	// Rejected: the packet failed authentication or is malformed; it is
	// dropped and counted as an auth drop.
	Rejected IngestResult = iota
	// Stale: the packet is valid in form but not currently useful (wrong
	// unit, already-complete unit); dropped silently.
	Stale
	// Duplicate: an identical packet was already stored.
	Duplicate
	// Stored: the packet was authenticated and stored; the unit is still
	// incomplete.
	Stored
	// UnitComplete: the packet completed its unit (enough packets arrived
	// to recover it).
	UnitComplete
)

// String implements fmt.Stringer.
func (r IngestResult) String() string {
	switch r {
	case Rejected:
		return "rejected"
	case Stale:
		return "stale"
	case Duplicate:
		return "duplicate"
	case Stored:
		return "stored"
	case UnitComplete:
		return "unit-complete"
	default:
		return "unknown"
	}
}

// ObjectHandler is a node's protocol-specific view of the object being
// disseminated: its unit structure, authentication rules, storage and
// packet regeneration. Implementations are single-threaded (simulation
// callbacks only).
type ObjectHandler interface {
	// Version is the code version being disseminated.
	Version() uint16

	// TotalUnits is the number of units in the object, or 0 while still
	// unknown (secure protocols learn it from the verified signature).
	TotalUnits() int

	// CompleteUnits is the number of leading units this node fully
	// possesses; the next unit to request is always CompleteUnits().
	CompleteUnits() int

	// PacketsInUnit returns how many distinct packets compose unit u.
	PacketsInUnit(u int) int

	// NeededInUnit returns how many distinct packets of unit u suffice to
	// recover it (k' for erasure-coded units; all for ARQ units).
	NeededInUnit(u int) int

	// HasPacket reports whether packet idx of unit u is already held, used
	// to build SNACK bit vectors (bit set = still wanted).
	HasPacket(u, idx int) bool

	// LearnTotal is a hint from a neighbor's advertisement about the
	// object's unit count. Non-secure protocols may trust it; secure
	// protocols ignore it and wait for the signature.
	LearnTotal(total int)

	// Ingest authenticates and stores an incoming data packet.
	Ingest(d *packet.Data) IngestResult

	// Authentic reports whether a data packet verifies against this
	// node's current authentication material, without storing it. The
	// engine consults it for packets of already-held units before letting
	// them drive suppression decisions: a forged packet must never
	// postpone requests or cancel queued transmissions, or injection
	// becomes a cheap denial-of-service lever.
	Authentic(d *packet.Data) bool

	// WantsSig reports whether the node still needs the signature packet.
	WantsSig() bool

	// PreVerifySig performs the cheap weak-authenticator (puzzle) check.
	// Only if it returns true does the engine charge the expensive
	// signature verification delay and call IngestSig.
	PreVerifySig(s *packet.Sig) bool

	// IngestSig performs the full signature verification and, on success,
	// establishes the authentication root. Returns UnitComplete when the
	// signature unit becomes complete.
	IngestSig(s *packet.Sig) IngestResult

	// Packets regenerates the data packets with the given indices of a
	// complete unit for transmission, stamped with src as the sender.
	Packets(u int, indices []int, src packet.NodeID) ([]*packet.Data, error)

	// SigPacket returns the signature packet if held (for serving unit 0),
	// else nil.
	SigPacket(src packet.NodeID) *packet.Sig

	// WipeVolatile models a mote power loss: RAM-resident state — the
	// partial assembly of the in-progress unit — is discarded, while
	// flash-resident state (completed units, the verified signature, and
	// authentication material derivable from completed units) survives.
	// After the call, CompleteUnits is unchanged but the in-progress unit
	// holds no packets.
	WipeVolatile()
}

// TxPolicy chooses which packets a serving node transmits in response to
// accumulated SNACK state (paper §IV-D.3). Implementations: the Deluge
// union-of-bit-vectors policy and the LR-Seluge greedy round-robin
// scheduler over a tracking table.
type TxPolicy interface {
	// OnSNACK merges a request from a neighbor for unit u.
	OnSNACK(from packet.NodeID, u int, bits packet.BitVector)

	// OnDataOverheard notes that another node just broadcast packet idx of
	// unit u, suppressing a duplicate transmission (Deluge's data
	// suppression, paper §II-A). Requesters that miss the overheard copy
	// will re-request it in a later SNACK.
	OnDataOverheard(u, idx int)

	// Next pops the next (unit, packet index) to transmit. ok is false
	// when no work is pending.
	Next() (u, idx int, ok bool)

	// Pending reports whether any transmissions remain queued.
	Pending() bool

	// DropRequester removes all pending state for a neighbor (used by the
	// denial-of-receipt defense).
	DropRequester(from packet.NodeID)

	// Reset clears all pending state.
	Reset()
}
