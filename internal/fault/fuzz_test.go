package fault

import (
	"testing"
)

// FuzzPlan fuzzes the JSON plan loader with the re-validation property: any
// input ParsePlan accepts must survive a second Validate pass (acceptance is
// stable) and every event time must map onto the sim clock without panicking.
// Inputs ParsePlan rejects must error cleanly — plan files are operator
// input, so a panic here crashes the CLI on a typo.
//
// The checked-in corpus under testdata/fuzz/FuzzPlan seeds the malformed
// shapes the validator is most likely to meet in hand-edited files: negative
// and non-monotone times, overlapping link windows, out-of-order reboots,
// unknown node ids (caught at install time), unknown fields, and extreme
// exponents.
func FuzzPlan(f *testing.F) {
	f.Add([]byte(`{"name":"ok","events":[{"at_sec":1,"kind":"node-crash","node":1},{"at_sec":2,"kind":"node-reboot","node":1}]}`))
	f.Add([]byte(`{"events":[{"at_sec":0,"kind":"partition","groups":[[0],[1,2]]},{"at_sec":9,"kind":"heal"}]}`))
	f.Add([]byte(`{"events":[{"at_sec":1,"kind":"link-down","from":0,"to":1,"bidir":true},{"at_sec":2,"kind":"link-up","from":0,"to":1,"bidir":true}]}`))
	f.Add([]byte(`{"events":[{"at_sec":3.5,"kind":"adversary-ramp","intensity":0.5}]}`))
	f.Add([]byte(`{"events":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		// Acceptance is stable: a parsed plan re-validates.
		if err := p.Validate(0); err != nil {
			t.Fatalf("accepted plan fails re-validation: %v", err)
		}
		// Every accepted time maps onto the sim clock without panicking and
		// preserves non-decreasing order.
		for i := 1; i < len(p.Events); i++ {
			if p.Events[i].At() < p.Events[i-1].At() {
				t.Fatalf("event %d sim time %v precedes event %d (%v)",
					i, p.Events[i].At(), i-1, p.Events[i-1].At())
			}
		}
	})
}
