package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lrseluge/internal/sim"
)

func TestValidateAcceptsWellFormedPlan(t *testing.T) {
	p := &Plan{Events: []Event{
		{AtSec: 1, Kind: NodeCrash, Node: 2},
		{AtSec: 2, Kind: LinkDown, From: 0, To: 1, Bidir: true},
		{AtSec: 3, Kind: NodeReboot, Node: 2},
		{AtSec: 4, Kind: LinkUp, From: 0, To: 1, Bidir: true},
		{AtSec: 5, Kind: Partition, Groups: [][]int{{0, 1}, {2}}},
		{AtSec: 6, Kind: Heal},
		{AtSec: 7, Kind: AdversaryRamp, Intensity: 2.5},
	}}
	if err := p.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		nodes  int
		want   string
	}{
		{"negative time", []Event{{AtSec: -1, Kind: Heal}}, 0, "negative time"},
		{"nan time", []Event{{AtSec: nan(), Kind: Heal}}, 0, "non-finite"},
		{"decreasing times", []Event{
			{AtSec: 2, Kind: NodeCrash, Node: 1},
			{AtSec: 1, Kind: NodeReboot, Node: 1},
		}, 0, "precedes"},
		{"double crash", []Event{
			{AtSec: 1, Kind: NodeCrash, Node: 1},
			{AtSec: 2, Kind: NodeCrash, Node: 1},
		}, 0, "already down"},
		{"reboot without crash", []Event{{AtSec: 1, Kind: NodeReboot, Node: 1}}, 0, "not down"},
		{"node out of bounds", []Event{{AtSec: 1, Kind: NodeCrash, Node: 9}}, 4, "outside topology"},
		{"negative node", []Event{{AtSec: 1, Kind: NodeCrash, Node: -1}}, 0, "negative"},
		{"overlapping link windows", []Event{
			{AtSec: 1, Kind: LinkDown, From: 0, To: 1},
			{AtSec: 2, Kind: LinkDown, From: 0, To: 1},
		}, 0, "open outage window"},
		{"link up without down", []Event{{AtSec: 1, Kind: LinkUp, From: 0, To: 1}}, 0, "without an open outage window"},
		{"self-loop link", []Event{{AtSec: 1, Kind: LinkDown, From: 2, To: 2}}, 0, "self-loop"},
		{"bidir overlap", []Event{
			{AtSec: 1, Kind: LinkDown, From: 0, To: 1},
			{AtSec: 2, Kind: LinkDown, From: 1, To: 0, Bidir: true},
		}, 0, "open outage window"},
		{"nested partition", []Event{
			{AtSec: 1, Kind: Partition, Groups: [][]int{{0}, {1}}},
			{AtSec: 2, Kind: Partition, Groups: [][]int{{0}, {1}}},
		}, 0, "already partitioned"},
		{"empty partition group", []Event{{AtSec: 1, Kind: Partition, Groups: [][]int{{}}}}, 0, "empty"},
		{"partition with no groups", []Event{{AtSec: 1, Kind: Partition}}, 0, "no groups"},
		{"node in two groups", []Event{{AtSec: 1, Kind: Partition, Groups: [][]int{{0, 1}, {1}}}}, 0, "two partition groups"},
		{"heal without partition", []Event{{AtSec: 1, Kind: Heal}}, 0, "without a partition"},
		{"negative intensity", []Event{{AtSec: 1, Kind: AdversaryRamp, Intensity: -1}}, 0, "non-negative"},
		{"unknown kind", []Event{{AtSec: 1, Kind: "meteor-strike"}}, 0, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Plan{Events: tc.events}
			err := p.Validate(tc.nodes)
			if err == nil {
				t.Fatalf("expected rejection containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestParsePlan(t *testing.T) {
	data := []byte(`{
		"name": "demo",
		"events": [
			{"at_sec": 1.5, "kind": "node-crash", "node": 1},
			{"at_sec": 3,   "kind": "node-reboot", "node": 1}
		]
	}`)
	p, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" || len(p.Events) != 2 {
		t.Fatalf("unexpected plan: %+v", p)
	}
	if got, want := p.Events[0].At(), sim.Time(1500)*sim.Millisecond; got != want {
		t.Fatalf("At() = %v, want %v", got, want)
	}
}

func TestParsePlanRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := ParsePlan([]byte(`{"events": [], "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParsePlan([]byte(`{"events": []} {"events": []}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	if _, err := ParsePlan([]byte(`{"events": [{"at_sec": 1, "kind": "node-reboot", "node": 1}]}`)); err == nil {
		t.Fatal("semantically invalid plan accepted")
	}
}

func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(path, []byte(`{"events": [{"at_sec": 2, "kind": "heal"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(path); err == nil {
		t.Fatal("invalid plan file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"events": [{"at_sec": 0.25, "kind": "node-crash", "node": 3}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 1 || p.Events[0].Node != 3 {
		t.Fatalf("unexpected plan: %+v", p)
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
