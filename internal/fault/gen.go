package fault

import (
	"fmt"
	"math/rand"

	"lrseluge/internal/sim"
)

// PeriodicChurn builds a plan in which each listed node crashes every
// `period` and stays down for `downtime`, with crash phases staggered evenly
// across the period so the network never loses all listed nodes at once.
// Crashes whose reboot would land past the horizon are omitted, so every
// generated crash is paired with a reboot.
func PeriodicChurn(nodes []int, period, downtime, horizon sim.Time) (*Plan, error) {
	if period <= 0 || downtime <= 0 || downtime >= period {
		return nil, fmt.Errorf("fault: periodic churn needs 0 < downtime < period, got period=%v downtime=%v", period, downtime)
	}
	var events []Event
	for i, id := range nodes {
		offset := period * sim.Time(i+1) / sim.Time(len(nodes)+1)
		for crash := offset; crash+downtime <= horizon; crash += period {
			events = append(events,
				Event{AtSec: crash.Seconds(), Kind: NodeCrash, Node: id},
				Event{AtSec: (crash + downtime).Seconds(), Kind: NodeReboot, Node: id},
			)
		}
	}
	sortEvents(events)
	p := &Plan{Name: "periodic-churn", Events: events}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return p, nil
}

// ChurnSpec parameterizes RandomChurn.
type ChurnSpec struct {
	// Nodes are the ids subject to churn (typically receivers only; the
	// base station is usually excluded so the object never vanishes).
	Nodes []int
	// MeanUptime and MeanDowntime are the exponential means of the
	// alternating up/down renewal process per node.
	MeanUptime, MeanDowntime sim.Time
	// Horizon bounds event generation; every crash is paired with a reboot
	// at or before it.
	Horizon sim.Time
	// Seed feeds the generator's dedicated RNG stream; the plan is a pure
	// function of the spec.
	Seed int64
}

// RandomChurn builds a churn plan from independent exponential up/down
// cycles per node, drawn from one dedicated stream seeded by the spec. Node
// draws happen in listed-node order, so the plan is byte-identical for a
// fixed spec regardless of caller context.
func RandomChurn(spec ChurnSpec) (*Plan, error) {
	if spec.MeanUptime <= 0 || spec.MeanDowntime <= 0 {
		return nil, fmt.Errorf("fault: random churn needs positive mean uptime and downtime, got %v/%v", spec.MeanUptime, spec.MeanDowntime)
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("fault: random churn needs a positive horizon, got %v", spec.Horizon)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	expDraw := func(mean sim.Time) sim.Time {
		return sim.Time(rng.ExpFloat64() * float64(mean))
	}
	var events []Event
	for _, id := range spec.Nodes {
		at := sim.Time(0)
		for {
			at += expDraw(spec.MeanUptime)
			down := expDraw(spec.MeanDowntime)
			if down <= 0 {
				down = sim.Millisecond
			}
			if at+down > spec.Horizon {
				break
			}
			events = append(events,
				Event{AtSec: at.Seconds(), Kind: NodeCrash, Node: id},
				Event{AtSec: (at + down).Seconds(), Kind: NodeReboot, Node: id},
			)
			at += down
		}
	}
	sortEvents(events)
	p := &Plan{Name: "random-churn", Events: events}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return p, nil
}

// OutageSpec parameterizes BurstOutages.
type OutageSpec struct {
	// Links are the directed links subjected to outage trains.
	Links [][2]int
	// Period is the cycle length; Outage is the down window inside each
	// cycle (the duty cycle is Outage/Period).
	Period, Outage sim.Time
	// Horizon bounds event generation.
	Horizon sim.Time
	// Bidir cuts both directions of each listed link.
	Bidir bool
}

// BurstOutages builds a plan of periodic link outage windows, staggered per
// link so outages do not all align. Every down event is paired with an up
// event at or before the horizon.
func BurstOutages(spec OutageSpec) (*Plan, error) {
	if spec.Period <= 0 || spec.Outage <= 0 || spec.Outage >= spec.Period {
		return nil, fmt.Errorf("fault: burst outages need 0 < outage < period, got period=%v outage=%v", spec.Period, spec.Outage)
	}
	var events []Event
	for i, l := range spec.Links {
		offset := spec.Period * sim.Time(i+1) / sim.Time(len(spec.Links)+1)
		for down := offset; down+spec.Outage <= spec.Horizon; down += spec.Period {
			events = append(events,
				Event{AtSec: down.Seconds(), Kind: LinkDown, From: l[0], To: l[1], Bidir: spec.Bidir},
				Event{AtSec: (down + spec.Outage).Seconds(), Kind: LinkUp, From: l[0], To: l[1], Bidir: spec.Bidir},
			)
		}
	}
	sortEvents(events)
	p := &Plan{Name: "burst-outages", Events: events}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return p, nil
}
