package fault

import (
	"fmt"

	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/trace"
)

// Restartable is implemented by protocol nodes that survive power cycles
// with the paper's mote storage model: Crash wipes RAM protocol state
// (partial unit assembly, timers, neighbor tables) while flash-resident
// completed units persist; Reboot resumes the protocol from the retained
// units.
type Restartable interface {
	Crash()
	Reboot()
}

// Engine schedules a fault plan's events on the sim clock, toggling the
// radio fault overlay and power-cycling registered nodes. It consumes no
// randomness: a plan plus a topology yields one deterministic event
// sequence.
type Engine struct {
	eng   *sim.Engine
	ov    *radio.FaultOverlay
	nodes map[int]Restartable

	onRamp func(intensity float64)

	// tr records fault events; nil disables tracing.
	tr *trace.Tracer
}

// NewEngine binds a fault engine to the simulation and its radio overlay.
func NewEngine(eng *sim.Engine, ov *radio.FaultOverlay) (*Engine, error) {
	if eng == nil || ov == nil {
		return nil, fmt.Errorf("fault: nil dependency")
	}
	return &Engine{eng: eng, ov: ov, nodes: make(map[int]Restartable)}, nil
}

// Register subscribes a node to crash/reboot events. Node ids without a
// registration (base stations kept out of churn, adversary slots) still have
// their radio silenced by the overlay when crashed.
func (f *Engine) Register(id int, n Restartable) {
	if n != nil {
		f.nodes[id] = n
	}
}

// OnAdversaryRamp registers the consumer of adversary-ramp events (usually
// an adversary.Injector's SetIntensity).
func (f *Engine) OnAdversaryRamp(fn func(intensity float64)) { f.onRamp = fn }

// SetTracer installs the event tracer; nil disables tracing.
func (f *Engine) SetTracer(tr *trace.Tracer) { f.tr = tr }

// Install validates the plan against the overlay's topology and schedules
// every event. The plan is read-only: installing the same plan into several
// runs is safe.
func (f *Engine) Install(p *Plan) error {
	if p == nil {
		return fmt.Errorf("fault: nil plan")
	}
	if err := p.Validate(f.ov.NumNodes()); err != nil {
		return err
	}
	for _, e := range p.Events {
		e := e
		f.eng.At(e.At(), func() { f.apply(e) })
	}
	return nil
}

// apply executes one event. The trace record goes first, then the overlay
// state flips before the node callback so a crashing node is already
// radio-dark when its protocol state is wiped.
func (f *Engine) apply(e Event) {
	f.traceEvent(e)
	switch e.Kind {
	case NodeCrash:
		f.ov.SetNodeDown(e.Node, true)
		if n := f.nodes[e.Node]; n != nil {
			n.Crash()
		}
	case NodeReboot:
		f.ov.SetNodeDown(e.Node, false)
		if n := f.nodes[e.Node]; n != nil {
			n.Reboot()
		}
	case LinkDown, LinkUp:
		down := e.Kind == LinkDown
		f.ov.SetLinkDown(e.From, e.To, down)
		if e.Bidir {
			f.ov.SetLinkDown(e.To, e.From, down)
		}
	case Partition:
		f.ov.SetPartition(e.Groups)
	case Heal:
		f.ov.ClearPartition()
	case AdversaryRamp:
		if f.onRamp != nil {
			f.onRamp(e.Intensity)
		}
	}
}

// traceEvent maps a fault-plan event onto a KindFault trace record: the
// subject node goes in Node, the link target in Peer, the ramp intensity in
// Value. Partition/heal events have no single node subject.
func (f *Engine) traceEvent(e Event) {
	if !f.tr.Enabled() {
		return
	}
	node, peer := trace.NoNode, trace.NoNode
	value := 0.0
	switch e.Kind {
	case NodeCrash, NodeReboot:
		node = e.Node
	case LinkDown, LinkUp:
		node, peer = e.From, e.To
	case AdversaryRamp:
		value = e.Intensity
	}
	f.tr.Fault(string(e.Kind), node, peer, value)
}
