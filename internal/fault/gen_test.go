package fault

import (
	"reflect"
	"testing"

	"lrseluge/internal/sim"
)

// pairingInvariants re-validates a generated plan and additionally checks
// that the plan ends with everything back up (every crash rebooted, every
// outage closed) — the generators promise paired events within the horizon.
func pairingInvariants(t *testing.T, p *Plan) {
	t.Helper()
	if err := p.Validate(0); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	down := make(map[int]bool)
	cut := make(map[linkID]bool)
	for _, e := range p.Events {
		switch e.Kind {
		case NodeCrash:
			down[e.Node] = true
		case NodeReboot:
			delete(down, e.Node)
		case LinkDown:
			cut[linkID{e.From, e.To}] = true
		case LinkUp:
			delete(cut, linkID{e.From, e.To})
		}
	}
	if len(down) != 0 {
		t.Fatalf("plan leaves nodes down at the horizon: %v", down)
	}
	if len(cut) != 0 {
		t.Fatalf("plan leaves links cut at the horizon: %v", cut)
	}
}

func TestPeriodicChurn(t *testing.T) {
	p, err := PeriodicChurn([]int{1, 2, 3}, 100*sim.Second, 10*sim.Second, 1000*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) == 0 {
		t.Fatal("no events generated")
	}
	pairingInvariants(t, p)
	// Staggered phases: the three nodes' first crashes must differ.
	first := make(map[int]float64)
	for _, e := range p.Events {
		if e.Kind == NodeCrash {
			if _, ok := first[e.Node]; !ok {
				first[e.Node] = e.AtSec
			}
		}
	}
	if first[1] == first[2] || first[2] == first[3] {
		t.Fatalf("crash phases not staggered: %v", first)
	}

	if _, err := PeriodicChurn([]int{1}, 10*sim.Second, 10*sim.Second, 100*sim.Second); err == nil {
		t.Fatal("downtime >= period accepted")
	}
}

func TestRandomChurnDeterministicAndPaired(t *testing.T) {
	spec := ChurnSpec{
		Nodes:        []int{1, 2, 3, 4},
		MeanUptime:   200 * sim.Second,
		MeanDowntime: 20 * sim.Second,
		Horizon:      3600 * sim.Second,
		Seed:         42,
	}
	a, err := RandomChurn(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomChurn(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("no churn generated over a long horizon")
	}
	pairingInvariants(t, a)

	spec.Seed = 43
	c, err := RandomChurn(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}

	bad := spec
	bad.MeanUptime = 0
	if _, err := RandomChurn(bad); err == nil {
		t.Fatal("zero mean uptime accepted")
	}
	bad = spec
	bad.Horizon = 0
	if _, err := RandomChurn(bad); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestBurstOutages(t *testing.T) {
	spec := OutageSpec{
		Links:   [][2]int{{0, 1}, {0, 2}},
		Period:  60 * sim.Second,
		Outage:  15 * sim.Second,
		Horizon: 600 * sim.Second,
		Bidir:   true,
	}
	p, err := BurstOutages(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) == 0 {
		t.Fatal("no outages generated")
	}
	pairingInvariants(t, p)
	for _, e := range p.Events {
		if !e.Bidir {
			t.Fatal("bidir flag lost")
		}
	}

	spec.Outage = spec.Period
	if _, err := BurstOutages(spec); err == nil {
		t.Fatal("outage >= period accepted")
	}
}
