package fault

import (
	"testing"

	"lrseluge/internal/metrics"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

// fakeNode records power cycles.
type fakeNode struct {
	crashes, reboots int
}

func (f *fakeNode) Crash()  { f.crashes++ }
func (f *fakeNode) Reboot() { f.reboots++ }

func newTestOverlay(t *testing.T, nodes int) (*sim.Engine, *radio.FaultOverlay) {
	t.Helper()
	eng := sim.New()
	g, err := topo.Complete(nodes)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := radio.New(eng, g, nil, radio.DefaultConfig(), metrics.New(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw.InstallFaultOverlay()
}

func TestEngineAppliesPlan(t *testing.T) {
	eng, ov := newTestOverlay(t, 4)
	fe, err := NewEngine(eng, ov)
	if err != nil {
		t.Fatal(err)
	}
	n1 := &fakeNode{}
	fe.Register(1, n1)
	fe.Register(2, nil) // no-op registration

	var ramps []float64
	fe.OnAdversaryRamp(func(x float64) { ramps = append(ramps, x) })

	plan := &Plan{Events: []Event{
		{AtSec: 1, Kind: NodeCrash, Node: 1},
		{AtSec: 2, Kind: LinkDown, From: 0, To: 2, Bidir: true},
		{AtSec: 3, Kind: AdversaryRamp, Intensity: 2},
		{AtSec: 4, Kind: NodeReboot, Node: 1},
		{AtSec: 5, Kind: LinkUp, From: 0, To: 2, Bidir: true},
		{AtSec: 6, Kind: Partition, Groups: [][]int{{0, 1}}},
		{AtSec: 7, Kind: Heal},
	}}
	if err := fe.Install(plan); err != nil {
		t.Fatal(err)
	}

	step := func(until sim.Time) { eng.Run(until) }

	step(1500 * sim.Millisecond)
	if !ov.NodeDown(1) || n1.crashes != 1 {
		t.Fatalf("crash not applied: down=%v crashes=%d", ov.NodeDown(1), n1.crashes)
	}
	step(2500 * sim.Millisecond)
	if !ov.Blocked(0, 2) || !ov.Blocked(2, 0) {
		t.Fatal("bidir link outage not applied")
	}
	step(3500 * sim.Millisecond)
	if len(ramps) != 1 || ramps[0] != 2 {
		t.Fatalf("ramp callback not applied: %v", ramps)
	}
	step(4500 * sim.Millisecond)
	if ov.NodeDown(1) || n1.reboots != 1 {
		t.Fatalf("reboot not applied: down=%v reboots=%d", ov.NodeDown(1), n1.reboots)
	}
	step(5500 * sim.Millisecond)
	if ov.Blocked(0, 2) || ov.Blocked(2, 0) {
		t.Fatal("link outage not cleared")
	}
	step(6500 * sim.Millisecond)
	if !ov.Blocked(0, 2) || ov.Blocked(0, 1) {
		t.Fatal("partition cells wrong: 0 and 1 share a group, 2 is in the remainder")
	}
	step(7500 * sim.Millisecond)
	if ov.Blocked(0, 2) {
		t.Fatal("heal not applied")
	}
}

func TestEngineRejectsBadInputs(t *testing.T) {
	eng, ov := newTestOverlay(t, 3)
	if _, err := NewEngine(nil, ov); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewEngine(eng, nil); err == nil {
		t.Fatal("nil overlay accepted")
	}
	fe, err := NewEngine(eng, ov)
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Install(nil); err == nil {
		t.Fatal("nil plan accepted")
	}
	// Node id valid structurally but outside this 3-node topology.
	if err := fe.Install(&Plan{Events: []Event{{AtSec: 1, Kind: NodeCrash, Node: 7}}}); err == nil {
		t.Fatal("out-of-topology plan accepted")
	}
}
