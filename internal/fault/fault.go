// Package fault is a deterministic fault-injection engine for the
// simulator: typed fault events — node crashes and reboots with the paper's
// flash-vs-RAM mote semantics, link outage windows, network partitions, and
// time-varying adversary intensity — scheduled on the sim clock from a
// validated plan.
//
// A Plan is an ordered list of events, loadable from JSON (scenario files
// checked into experiments) or produced by the composable generators in
// gen.go (periodic churn, random churn from a dedicated seeded stream, burst
// outage trains). The Engine in engine.go installs a plan against a radio
// fault overlay and the registered protocol nodes.
//
// Determinism: a Plan is pure data; applying it consumes no randomness.
// The only RNG in this package is the one RandomChurn derives from its
// spec's seed, so same-seed runs remain byte-identical end to end.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"lrseluge/internal/sim"
)

// Kind names a fault event type. The string values are the JSON wire
// vocabulary of scenario files.
type Kind string

// Fault event kinds.
const (
	// NodeCrash powers a mote off mid-protocol: RAM state (partial unit
	// assembly, timers, neighbor tables) is lost; flash-resident completed
	// units survive (paper mote model: pages are written to external flash
	// as they complete).
	NodeCrash Kind = "node-crash"
	// NodeReboot powers a crashed mote back on; it resumes from its
	// flash-retained units and re-fetches only the interrupted unit.
	NodeReboot Kind = "node-reboot"
	// LinkDown opens an outage window on a directed link (both directions
	// when the event sets bidir).
	LinkDown Kind = "link-down"
	// LinkUp closes the link's outage window.
	LinkUp Kind = "link-up"
	// Partition cuts the network along a node-set boundary: packets cross
	// partition groups only after a Heal. Nodes not listed in any group
	// form one implicit remainder group.
	Partition Kind = "partition"
	// Heal removes the current partition.
	Heal Kind = "heal"
	// AdversaryRamp sets the forgery-injection intensity multiplier
	// (1 = the attacker's base rate, 0 = paused).
	AdversaryRamp Kind = "adversary-ramp"
)

// Event is one scheduled fault. Which fields are meaningful depends on Kind;
// Validate rejects plans whose events are internally inconsistent.
type Event struct {
	// AtSec is the virtual firing time in seconds from simulation start.
	AtSec float64 `json:"at_sec"`
	Kind  Kind    `json:"kind"`

	// Node is the crashing/rebooting node (node-crash, node-reboot).
	Node int `json:"node,omitempty"`

	// From/To name the directed link (link-down, link-up); Bidir applies
	// the event to both directions.
	From  int  `json:"from,omitempty"`
	To    int  `json:"to,omitempty"`
	Bidir bool `json:"bidir,omitempty"`

	// Groups are the partition cells (partition). Unlisted nodes form one
	// implicit extra cell.
	Groups [][]int `json:"groups,omitempty"`

	// Intensity is the adversary rate multiplier (adversary-ramp).
	Intensity float64 `json:"intensity,omitempty"`
}

// At returns the event's firing time on the sim clock.
func (e Event) At() sim.Time {
	return sim.Time(math.Round(e.AtSec * float64(sim.Second)))
}

// Plan is a validated, time-ordered fault scenario.
type Plan struct {
	// Name labels the scenario in logs and artifacts.
	Name   string  `json:"name,omitempty"`
	Events []Event `json:"events"`
}

// ParsePlan decodes a JSON plan and performs the structural validation that
// does not need the topology size (node-id bounds are rechecked when the
// plan is installed against a concrete network).
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	// A second document after the first is a malformed file, not a plan.
	if dec.More() {
		return nil, fmt.Errorf("fault: parse plan: trailing data after plan document")
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads and parses a JSON plan file.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	p, err := ParsePlan(data)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return p, nil
}

// linkID is a directed link key used during validation.
type linkID struct{ from, to int }

// maxPlanSec bounds event times so they map onto the int64-nanosecond sim
// clock without overflow (~292 simulated years).
const maxPlanSec = float64(math.MaxInt64) / float64(sim.Second)

// Validate checks the plan's internal consistency: finite non-decreasing
// times, crash/reboot alternation per node, paired non-overlapping link
// windows, and non-nested partitions with disjoint groups. When numNodes is
// positive every referenced node id must be inside [0, numNodes).
func (p *Plan) Validate(numNodes int) error {
	checkNode := func(i, id int, what string) error {
		if id < 0 {
			return fmt.Errorf("fault: event %d: negative %s id %d", i, what, id)
		}
		if numNodes > 0 && id >= numNodes {
			return fmt.Errorf("fault: event %d: %s id %d outside topology of %d nodes", i, what, id, numNodes)
		}
		return nil
	}

	prev := math.Inf(-1)
	down := make(map[int]bool)   // node -> crashed
	cut := make(map[linkID]bool) // directed link -> in an outage window
	partitioned := false
	for i, e := range p.Events {
		if math.IsNaN(e.AtSec) || math.IsInf(e.AtSec, 0) {
			return fmt.Errorf("fault: event %d: non-finite time %v", i, e.AtSec)
		}
		if e.AtSec < 0 {
			return fmt.Errorf("fault: event %d: negative time %v", i, e.AtSec)
		}
		if e.AtSec >= maxPlanSec {
			return fmt.Errorf("fault: event %d: time %v beyond the sim clock", i, e.AtSec)
		}
		if i > 0 && e.AtSec < prev {
			return fmt.Errorf("fault: event %d: time %v precedes event %d (%v); plans must be sorted", i, e.AtSec, i-1, prev)
		}
		prev = e.AtSec

		switch e.Kind {
		case NodeCrash:
			if err := checkNode(i, e.Node, "node"); err != nil {
				return err
			}
			if down[e.Node] {
				return fmt.Errorf("fault: event %d: node %d crashes while already down", i, e.Node)
			}
			down[e.Node] = true
		case NodeReboot:
			if err := checkNode(i, e.Node, "node"); err != nil {
				return err
			}
			if !down[e.Node] {
				return fmt.Errorf("fault: event %d: node %d reboots while not down", i, e.Node)
			}
			delete(down, e.Node)
		case LinkDown, LinkUp:
			if err := checkNode(i, e.From, "link-from"); err != nil {
				return err
			}
			if err := checkNode(i, e.To, "link-to"); err != nil {
				return err
			}
			if e.From == e.To {
				return fmt.Errorf("fault: event %d: link %d->%d is a self-loop", i, e.From, e.To)
			}
			dirs := []linkID{{e.From, e.To}}
			if e.Bidir {
				dirs = append(dirs, linkID{e.To, e.From})
			}
			for _, l := range dirs {
				if e.Kind == LinkDown {
					if cut[l] {
						return fmt.Errorf("fault: event %d: link %d->%d goes down inside an open outage window", i, l.from, l.to)
					}
					cut[l] = true
				} else {
					if !cut[l] {
						return fmt.Errorf("fault: event %d: link %d->%d comes up without an open outage window", i, l.from, l.to)
					}
					delete(cut, l)
				}
			}
		case Partition:
			if partitioned {
				return fmt.Errorf("fault: event %d: partition while already partitioned (heal first)", i)
			}
			if len(e.Groups) == 0 {
				return fmt.Errorf("fault: event %d: partition with no groups", i)
			}
			seen := make(map[int]bool)
			for gi, g := range e.Groups {
				if len(g) == 0 {
					return fmt.Errorf("fault: event %d: partition group %d is empty", i, gi)
				}
				for _, id := range g {
					if err := checkNode(i, id, "partition-member"); err != nil {
						return err
					}
					if seen[id] {
						return fmt.Errorf("fault: event %d: node %d listed in two partition groups", i, id)
					}
					seen[id] = true
				}
			}
			partitioned = true
		case Heal:
			if !partitioned {
				return fmt.Errorf("fault: event %d: heal without a partition", i)
			}
			partitioned = false
		case AdversaryRamp:
			if math.IsNaN(e.Intensity) || math.IsInf(e.Intensity, 0) || e.Intensity < 0 {
				return fmt.Errorf("fault: event %d: adversary intensity %v must be finite and non-negative", i, e.Intensity)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// sortEvents orders events by time, keeping the (deterministic) generation
// order of simultaneous events.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtSec < events[j].AtSec })
}
