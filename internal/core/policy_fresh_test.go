package core

import (
	"testing"

	"lrseluge/internal/packet"
)

func freshFor(n, kprime int) *FreshPolicy {
	return NewFreshPolicy(func(int) int { return n }, func(int) int { return kprime })
}

func drainFresh(p *FreshPolicy) []int {
	var out []int
	for {
		_, idx, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, idx)
	}
}

func TestFreshServesDistancePackets(t *testing.T) {
	p := freshFor(8, 8)
	bits := packet.NewBitVector(8)
	bits.Set(1, true)
	bits.Set(5, true)
	bits.Set(7, true)
	p.OnSNACK(1, 0, bits) // q=3, d=3
	sent := drainFresh(p)
	// Fresh policy ignores which packets were asked for: indices 0,1,2.
	if len(sent) != 3 || sent[0] != 0 || sent[1] != 1 || sent[2] != 2 {
		t.Fatalf("sent %v, want [0 1 2]", sent)
	}
}

func TestFreshPointerPersistsAcrossRounds(t *testing.T) {
	p := freshFor(8, 8)
	bits := packet.NewBitVector(8)
	bits.Set(0, true)
	bits.Set(1, true)
	p.OnSNACK(1, 0, bits)
	drainFresh(p)
	p.OnSNACK(1, 0, bits)
	_, idx, ok := p.Next()
	if !ok || idx != 2 {
		t.Fatalf("second round should continue at 2, got %d", idx)
	}
}

func TestFreshWrapsAround(t *testing.T) {
	p := freshFor(4, 4)
	all := packet.NewBitVector(4)
	all.SetAll()
	p.OnSNACK(1, 0, all)
	drainFresh(p) // 0..3
	p.OnSNACK(1, 0, all)
	sent := drainFresh(p)
	if len(sent) != 4 || sent[0] != 0 {
		t.Fatalf("wrap-around wrong: %v", sent)
	}
}

func TestFreshSharedTransmissions(t *testing.T) {
	// Two requesters with distances 2 and 3: only 3 packets total (every
	// fresh packet helps both).
	p := freshFor(16, 10)
	a := packet.NewBitVector(16)
	b := packet.NewBitVector(16)
	for i := 0; i < 8; i++ {
		a.Set(i, true) // q=8, d=8+10-16=2
	}
	for i := 0; i < 9; i++ {
		b.Set(i, true) // q=9, d=3
	}
	p.OnSNACK(1, 0, a)
	p.OnSNACK(2, 0, b)
	if got := len(drainFresh(p)); got != 3 {
		t.Fatalf("sent %d, want 3 (max distance)", got)
	}
}

func TestFreshOverheardReducesDebt(t *testing.T) {
	p := freshFor(8, 8)
	bits := packet.NewBitVector(8)
	bits.Set(0, true)
	bits.Set(1, true)
	bits.Set(2, true)
	p.OnSNACK(1, 0, bits) // d=3
	p.OnDataOverheard(0, 5)
	p.OnDataOverheard(0, 6)
	if got := len(drainFresh(p)); got != 1 {
		t.Fatalf("sent %d, want 1 after two overheard", got)
	}
}

func TestFreshNearSatisfiedRequesterServedOne(t *testing.T) {
	// With probabilistic (LT) decoding a requester's nominal distance can
	// be <= 0 while it still needs symbols, so any request with bits set
	// is served at least one packet.
	p := freshFor(16, 8)
	bits := packet.NewBitVector(16)
	bits.Set(0, true) // q=1, nominal d=1+8-16 < 0
	p.OnSNACK(1, 0, bits)
	if got := len(drainFresh(p)); got != 1 {
		t.Fatalf("served %d, want exactly 1", got)
	}
}

func TestFreshEmptyRequestDropped(t *testing.T) {
	p := freshFor(16, 8)
	p.OnSNACK(1, 0, packet.NewBitVector(16)) // q=0: nothing wanted
	if p.Pending() {
		t.Fatal("empty request created work")
	}
}

func TestFreshDropRequesterAndReset(t *testing.T) {
	p := freshFor(4, 4)
	all := packet.NewBitVector(4)
	all.SetAll()
	p.OnSNACK(1, 0, all)
	p.DropRequester(1)
	if p.Pending() {
		t.Fatal("DropRequester left work")
	}
	p.OnSNACK(1, 0, all)
	drainFresh(p)
	p.Reset()
	p.OnSNACK(1, 0, all)
	_, idx, _ := p.Next()
	if idx != 0 {
		t.Fatalf("Reset should clear the pointer, got %d", idx)
	}
}

func BenchmarkSchedulerNext(b *testing.B) {
	all := packet.NewBitVector(48)
	all.SetAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := schedFor(48, 32)
		for id := packet.NodeID(1); id <= 20; id++ {
			s.OnSNACK(id, 0, all)
		}
		for {
			if _, _, ok := s.Next(); !ok {
				break
			}
		}
	}
}
