package core

import (
	"fmt"

	"lrseluge/internal/crypt/hashx"
	"lrseluge/internal/crypt/merkle"
	"lrseluge/internal/dissem"
	"lrseluge/internal/erasure"
	"lrseluge/internal/image"
	"lrseluge/internal/obs"
	"lrseluge/internal/packet"
)

// Handler is a node's LR-Seluge object state, implementing
// dissem.ObjectHandler: immediate per-packet authentication plus
// erasure-decoding once any k' authenticated packets of a page arrive
// (paper §IV-E).
type Handler struct {
	version uint16
	params  image.Params
	geom    m0Geometry
	codec   erasure.Codec
	codec0  erasure.Codec
	sigCtx  *dissem.SigContext

	// Established by the verified signature packet.
	sig  *packet.Sig
	root hashx.Image
	g    int

	// Hash page (unit 1) assembly.
	m0Shards [][]byte // length n0; nil = missing
	m0Count  int
	m0Done   bool
	m0Enc    [][]byte // re-generated n0 encoded blocks (for serving)
	tree     *merkle.Tree

	// Current page assembly; expected[j] is the pre-established hash image
	// of packet j of the page currently being received.
	curShards [][]byte
	curCount  int
	expected  []hashx.Image

	// Completed pages: plaintext blocks (erasure-coder input, kept for
	// re-encoding when serving), a lazy cache of encoded packets, and each
	// page's packet hash images (for authenticating overheard packets of
	// pages we already hold).
	pageBlocks [][][]byte
	pageEnc    [][][]byte
	pageHashes [][]hashx.Image
}

var _ dissem.ObjectHandler = (*Handler)(nil)

// NewHandler creates an empty receiver-side handler. Every node derives the
// same code instances f and f0 from the preloaded parameters (paper §IV-B).
func NewHandler(version uint16, p image.Params, sigCtx *dissem.SigContext) (*Handler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sigCtx == nil {
		return nil, fmt.Errorf("core: nil signature context")
	}
	codec, err := erasure.NewReedSolomon(p.K, p.N)
	if err != nil {
		return nil, err
	}
	geom, err := geometryFor(p)
	if err != nil {
		return nil, err
	}
	codec0, err := erasure.NewReedSolomon(geom.numPlain, geom.numEnc)
	if err != nil {
		return nil, err
	}
	h := &Handler{
		version: version,
		params:  p,
		geom:    geom,
		codec:   codec,
		codec0:  codec0,
		sigCtx:  sigCtx,
	}
	h.resetM0()
	h.resetCurrent()
	return h, nil
}

// Preload creates a handler that already possesses the whole object (the
// base station).
func Preload(o *Object, sigCtx *dissem.SigContext) *Handler {
	h := &Handler{
		version:    o.version,
		params:     o.params,
		geom:       o.geom,
		codec:      o.codec,
		codec0:     o.codec0,
		sigCtx:     sigCtx,
		sig:        o.sig,
		root:       o.tree.Root(),
		g:          o.g,
		m0Done:     true,
		m0Count:    o.geom.numEnc,
		m0Enc:      o.m0Enc,
		tree:       o.tree,
		pageBlocks: o.pageBlocks,
		pageEnc:    o.pageEnc,
		pageHashes: o.pageHashes,
	}
	h.resetCurrent()
	return h
}

func (h *Handler) resetM0() {
	h.m0Shards = make([][]byte, h.geom.numEnc)
	h.m0Count = 0
}

func (h *Handler) resetCurrent() {
	h.curShards = make([][]byte, h.params.N)
	h.curCount = 0
}

// WipeVolatile implements dissem.ObjectHandler: a power loss discards the
// RAM-resident partial assemblies (the in-progress page's shards, and the
// hash page's shards if it was still being decoded). Everything else —
// completed pages, the decoded hash page, the verified signature, and the
// expected hash images for the current page (recomputable from the previous
// flash-resident page's appendix) — lives in flash and survives.
func (h *Handler) WipeVolatile() {
	if !h.m0Done {
		h.resetM0()
	}
	h.resetCurrent()
}

// Version implements dissem.ObjectHandler.
func (h *Handler) Version() uint16 { return h.version }

// TotalUnits implements dissem.ObjectHandler: 0 until the signature is
// verified.
func (h *Handler) TotalUnits() int {
	if h.sig == nil {
		return 0
	}
	return h.g + 2
}

// CompleteUnits implements dissem.ObjectHandler.
func (h *Handler) CompleteUnits() int {
	if h.sig == nil {
		return 0
	}
	if !h.m0Done {
		return 1
	}
	return 2 + len(h.pageBlocks)
}

// PacketsInUnit implements dissem.ObjectHandler.
func (h *Handler) PacketsInUnit(u int) int {
	switch u {
	case 0:
		return 1
	case 1:
		return h.geom.numEnc
	default:
		return h.params.N
	}
}

// NeededInUnit implements dissem.ObjectHandler: k0' for M0, k' for pages —
// the loss resilience the fixed-rate code buys.
func (h *Handler) NeededInUnit(u int) int {
	switch u {
	case 0:
		return 1
	case 1:
		return h.codec0.KPrime()
	default:
		return h.codec.KPrime()
	}
}

// HasPacket implements dissem.ObjectHandler.
func (h *Handler) HasPacket(u, idx int) bool {
	cu := h.CompleteUnits()
	switch {
	case u < cu:
		return true
	case u > cu:
		return false
	case u == 0:
		return false
	case u == 1:
		return idx >= 0 && idx < len(h.m0Shards) && h.m0Shards[idx] != nil
	default:
		return idx >= 0 && idx < len(h.curShards) && h.curShards[idx] != nil
	}
}

// LearnTotal implements dissem.ObjectHandler: ignored; only the verified
// signature determines the object extent.
func (h *Handler) LearnTotal(int) {}

// WantsSig implements dissem.ObjectHandler.
func (h *Handler) WantsSig() bool { return h.sig == nil }

// PreVerifySig implements dissem.ObjectHandler.
func (h *Handler) PreVerifySig(s *packet.Sig) bool {
	if h.sig != nil {
		return false
	}
	return h.sigCtx.WeakCheck(s)
}

// IngestSig implements dissem.ObjectHandler.
func (h *Handler) IngestSig(s *packet.Sig) dissem.IngestResult {
	if h.sig != nil {
		return dissem.Duplicate
	}
	if !h.sigCtx.FullVerify(s) || s.Pages == 0 {
		return dissem.Rejected
	}
	h.sig = &packet.Sig{
		Version:   s.Version,
		Pages:     s.Pages,
		Root:      s.Root,
		Signature: append([]byte(nil), s.Signature...),
		PuzzleKey: s.PuzzleKey,
		PuzzleSol: s.PuzzleSol,
	}
	h.root = s.Root
	h.g = int(s.Pages)
	return dissem.UnitComplete
}

// Ingest implements dissem.ObjectHandler: authenticate immediately, store,
// and erasure-decode as soon as k' (or k0') authenticated packets are in.
func (h *Handler) Ingest(d *packet.Data) dissem.IngestResult {
	u := int(d.Unit)
	if u != h.CompleteUnits() {
		return dissem.Stale
	}
	switch u {
	case 0:
		return dissem.Stale
	case 1:
		return h.ingestM0(d)
	default:
		return h.ingestPage(d)
	}
}

func (h *Handler) ingestM0(d *packet.Data) dissem.IngestResult {
	idx := int(d.Index)
	if idx < 0 || idx >= h.geom.numEnc || len(d.Payload) != h.geom.blockSize || len(d.Proof) != h.geom.depth {
		return dissem.Rejected
	}
	ot := h.sigCtx.Obs
	ot.StartLeaf(obs.PhaseHashVerify)
	if !merkle.Verify(h.root, d.Payload, idx, d.Proof) {
		ot.EndLeaf(obs.PhaseHashVerify)
		return dissem.Rejected
	}
	ot.EndLeaf(obs.PhaseHashVerify)
	if h.m0Shards[idx] != nil {
		return dissem.Duplicate
	}
	h.m0Shards[idx] = append([]byte(nil), d.Payload...)
	h.m0Count++
	if h.m0Count < h.codec0.KPrime() {
		return dissem.Stored
	}
	ot.Start(obs.PhaseRSDecode)
	plain, err := h.codec0.Decode(h.m0Shards)
	ot.End(obs.PhaseRSDecode)
	if err != nil {
		return dissem.Stored // cannot happen with an MDS code; wait for more
	}
	ot.Start(obs.PhaseRSEncode)
	enc, err := h.codec0.Encode(plain)
	ot.End(obs.PhaseRSEncode)
	if err != nil {
		return dissem.Stored
	}
	ot.Start(obs.PhaseHashVerify)
	tree, err := merkle.Build(enc)
	ot.End(obs.PhaseHashVerify)
	if err != nil || tree.Root() != h.root {
		// All stored shards were individually authenticated, so this is
		// unreachable; reset defensively.
		h.resetM0()
		return dissem.Rejected
	}
	h.m0Enc = enc
	h.tree = tree
	h.m0Done = true
	// M0 is the concatenation of page 1's packet hash images.
	joined := image.Join(plain)
	h.expected = hashx.Split(joined[:h.params.N*hashx.Size])
	return dissem.UnitComplete
}

func (h *Handler) ingestPage(d *packet.Data) dissem.IngestResult {
	idx := int(d.Index)
	if idx < 0 || idx >= h.params.N || len(d.Payload) != h.params.PacketPayload || len(d.Proof) != 0 {
		return dissem.Rejected
	}
	if len(h.expected) != h.params.N {
		return dissem.Rejected // no authentication material (should not happen page-by-page)
	}
	ot := h.sigCtx.Obs
	ot.StartLeaf(obs.PhaseHashVerify)
	if hashx.Sum(d.AuthBody()) != h.expected[idx] {
		ot.EndLeaf(obs.PhaseHashVerify)
		return dissem.Rejected
	}
	ot.EndLeaf(obs.PhaseHashVerify)
	if h.curShards[idx] != nil {
		return dissem.Duplicate
	}
	h.curShards[idx] = append([]byte(nil), d.Payload...)
	h.curCount++
	if h.curCount < h.codec.KPrime() {
		return dissem.Stored
	}
	ot.Start(obs.PhaseRSDecode)
	blocks, err := h.codec.Decode(h.curShards)
	ot.End(obs.PhaseRSDecode)
	if err != nil {
		return dissem.Stored
	}
	h.pageBlocks = append(h.pageBlocks, blocks)
	h.pageEnc = append(h.pageEnc, nil) // encoded form regenerated on demand
	// The hashes that authenticated this page stay available for verifying
	// overheard copies of its packets later.
	h.pageHashes = append(h.pageHashes, h.expected)
	// The decoded plaintext's tail is the appendix: the hash images of the
	// NEXT page's encoded packets (zeros after the final page).
	joined := image.Join(blocks)
	h.expected = hashx.Split(joined[len(joined)-h.params.N*hashx.Size:])
	h.resetCurrent()
	return dissem.UnitComplete
}

// Authentic implements dissem.ObjectHandler: verify a packet of any
// already-held unit against established material without storing it, so
// forged packets cannot drive suppression decisions.
func (h *Handler) Authentic(d *packet.Data) bool {
	if h.sig == nil {
		return false
	}
	u := int(d.Unit)
	idx := int(d.Index)
	switch {
	case u == 1:
		if idx < 0 || idx >= h.geom.numEnc ||
			len(d.Payload) != h.geom.blockSize || len(d.Proof) != h.geom.depth {
			return false
		}
		ot := h.sigCtx.Obs
		ot.StartLeaf(obs.PhaseHashVerify)
		ok := merkle.Verify(h.root, d.Payload, idx, d.Proof)
		ot.EndLeaf(obs.PhaseHashVerify)
		return ok
	case u >= 2:
		if idx < 0 || idx >= h.params.N || len(d.Payload) != h.params.PacketPayload || len(d.Proof) != 0 {
			return false
		}
		page := u - 2
		var hashes []hashx.Image
		switch {
		case page < len(h.pageHashes):
			hashes = h.pageHashes[page]
		case page == len(h.pageHashes) && len(h.expected) == h.params.N:
			hashes = h.expected
		default:
			return false
		}
		ot := h.sigCtx.Obs
		ot.StartLeaf(obs.PhaseHashVerify)
		ok := hashx.Sum(d.AuthBody()) == hashes[idx]
		ot.EndLeaf(obs.PhaseHashVerify)
		return ok
	default:
		return false
	}
}

// SigPacket implements dissem.ObjectHandler.
func (h *Handler) SigPacket(src packet.NodeID) *packet.Sig {
	if h.sig == nil {
		return nil
	}
	out := *h.sig
	out.Src = src
	return &out
}

// Packets implements dissem.ObjectHandler: a serving node re-applies the
// same erasure code to the recovered page to regenerate ANY of the n
// encoded packets, exactly as the base station built them (paper §IV-D.3).
func (h *Handler) Packets(u int, indices []int, src packet.NodeID) ([]*packet.Data, error) {
	if u >= h.CompleteUnits() {
		return nil, fmt.Errorf("core: unit %d not held", u)
	}
	out := make([]*packet.Data, 0, len(indices))
	switch u {
	case 1:
		for _, idx := range indices {
			if idx < 0 || idx >= h.geom.numEnc {
				return nil, fmt.Errorf("core: M0 index %d out of range", idx)
			}
			proof, err := h.tree.Proof(idx)
			if err != nil {
				return nil, err
			}
			out = append(out, &packet.Data{
				Src: src, Version: h.version, Unit: 1, Index: uint8(idx),
				Payload: h.m0Enc[idx], Proof: proof,
			})
		}
	default:
		page := u - 2
		if page < 0 || page >= len(h.pageBlocks) {
			return nil, fmt.Errorf("core: page unit %d not held", u)
		}
		enc, err := h.encodedPage(page)
		if err != nil {
			return nil, err
		}
		for _, idx := range indices {
			if idx < 0 || idx >= h.params.N {
				return nil, fmt.Errorf("core: packet index %d out of range", idx)
			}
			out = append(out, &packet.Data{
				Src: src, Version: h.version, Unit: packet.Unit(u), Index: uint8(idx),
				Payload: enc[idx],
			})
		}
	}
	return out, nil
}

func (h *Handler) encodedPage(page int) ([][]byte, error) {
	if h.pageEnc[page] != nil {
		return h.pageEnc[page], nil
	}
	ot := h.sigCtx.Obs
	ot.Start(obs.PhaseRSEncode)
	enc, err := h.codec.Encode(h.pageBlocks[page])
	ot.End(obs.PhaseRSEncode)
	if err != nil {
		return nil, err
	}
	h.pageEnc[page] = enc
	return enc, nil
}

// ReassembledImage strips appendices and padding, returning the received
// code image for end-to-end verification.
func (h *Handler) ReassembledImage(size int) ([]byte, error) {
	if h.sig == nil || len(h.pageBlocks) < h.g {
		return nil, fmt.Errorf("core: object incomplete")
	}
	pages := make([][]byte, h.g)
	for i, blocks := range h.pageBlocks {
		joined := image.Join(blocks)
		pages[i] = joined[:h.params.LRPageBytes()]
	}
	return image.Reassemble(pages, size)
}

// NewPolicy returns LR-Seluge's greedy round-robin transmission scheduler
// over this handler's unit structure.
func (h *Handler) NewPolicy() dissem.TxPolicy {
	return NewScheduler(h.PacketsInUnit, h.NeededInUnit)
}
