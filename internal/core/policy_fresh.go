package core

import (
	"lrseluge/internal/detmap"
	"lrseluge/internal/dissem"
	"lrseluge/internal/packet"
)

// FreshPolicy is an ablation baseline modeling rateless-style serving (as in
// Rateless Deluge / SYNAPSE): the server ignores WHICH packets a requester
// asks for and simply transmits the next encoded packet in round-robin
// order, sending enough packets to cover the largest outstanding distance.
// With a fixed-rate code it wraps around after n packets.
//
// Compared with the paper's greedy scheduler it wastes transmissions when
// requesters' missing sets overlap (popularity information is discarded),
// which is exactly what the ablation bench quantifies.
type FreshPolicy struct {
	sizeOf   func(unit int) int
	neededOf func(unit int) int
	units    map[int]*freshUnit
	// nextIdx persists each unit's round-robin pointer across drain
	// cycles; restarting from 0 would starve receivers that already hold
	// the low indices.
	nextIdx map[int]int
}

type freshUnit struct {
	// remaining transmissions owed, the max of requesters' distances.
	owed map[packet.NodeID]int
	next int
}

var _ dissem.TxPolicy = (*FreshPolicy)(nil)

// NewFreshPolicy creates the rateless-style serving policy.
func NewFreshPolicy(sizeOf, neededOf func(unit int) int) *FreshPolicy {
	return &FreshPolicy{
		sizeOf:   sizeOf,
		neededOf: neededOf,
		units:    make(map[int]*freshUnit),
		nextIdx:  make(map[int]int),
	}
}

// OnSNACK implements dissem.TxPolicy: only the requester's distance is kept;
// the bit vector's specifics are discarded (rateless senders do not track
// which packets a receiver holds).
func (p *FreshPolicy) OnSNACK(from packet.NodeID, u int, bits packet.BitVector) {
	n := p.sizeOf(u)
	if bits.Len() != n {
		return
	}
	q := bits.Count()
	fu := p.units[u]
	if q == 0 {
		if fu != nil {
			delete(fu.owed, from)
			if len(fu.owed) == 0 {
				delete(p.units, u)
			}
		}
		return
	}
	// A requester that still asks for packets needs at least one more:
	// with probabilistic (LT) decoding the nominal distance can reach zero
	// while decoding is still incomplete.
	dist := q + p.neededOf(u) - n
	if dist < 1 {
		dist = 1
	}
	if fu == nil {
		fu = &freshUnit{owed: make(map[packet.NodeID]int), next: p.nextIdx[u]}
		p.units[u] = fu
	}
	fu.owed[from] = dist
}

// OnDataOverheard implements dissem.TxPolicy: another server's transmission
// counts toward every requester's distance.
func (p *FreshPolicy) OnDataOverheard(u, _ int) {
	fu := p.units[u]
	if fu == nil {
		return
	}
	//lrlint:ignore scan-complexity owed holds only in-range requesters that SNACKed; trip count is node degree, not network size
	for id := range fu.owed {
		fu.owed[id]--
		if fu.owed[id] <= 0 {
			delete(fu.owed, id)
		}
	}
	if len(fu.owed) == 0 {
		delete(p.units, u)
	}
}

// Next implements dissem.TxPolicy.
func (p *FreshPolicy) Next() (int, int, bool) {
	u, fu, ok := p.lowestUnit()
	if !ok {
		return 0, 0, false
	}
	idx := fu.next
	fu.next = (fu.next + 1) % p.sizeOf(u)
	p.nextIdx[u] = fu.next
	//lrlint:ignore scan-complexity owed holds only in-range requesters that SNACKed; trip count is node degree, not network size
	for id := range fu.owed {
		fu.owed[id]--
		if fu.owed[id] <= 0 {
			delete(fu.owed, id)
		}
	}
	if len(fu.owed) == 0 {
		delete(p.units, u)
	}
	return u, idx, true
}

// Pending implements dissem.TxPolicy.
func (p *FreshPolicy) Pending() bool {
	for _, fu := range p.units {
		if len(fu.owed) > 0 {
			return true
		}
	}
	return false
}

// DropRequester implements dissem.TxPolicy.
func (p *FreshPolicy) DropRequester(from packet.NodeID) {
	for u, fu := range p.units {
		delete(fu.owed, from)
		if len(fu.owed) == 0 {
			delete(p.units, u)
		}
	}
}

// Reset implements dissem.TxPolicy.
func (p *FreshPolicy) Reset() {
	p.units = make(map[int]*freshUnit)
	p.nextIdx = make(map[int]int)
}

func (p *FreshPolicy) lowestUnit() (int, *freshUnit, bool) {
	if len(p.units) == 0 {
		return 0, nil, false
	}
	for _, u := range detmap.SortedKeys(p.units) {
		if len(p.units[u].owed) > 0 {
			return u, p.units[u], true
		}
		delete(p.units, u)
	}
	return 0, nil, false
}
