package core

import (
	"testing"

	"lrseluge/internal/packet"
)

func schedFor(n, kprime int) *Scheduler {
	return NewScheduler(func(int) int { return n }, func(int) int { return kprime })
}

func bitsFrom(s string) packet.BitVector {
	v := packet.NewBitVector(len(s))
	for i, c := range s {
		v.Set(i, c == '1')
	}
	return v
}

// TestTableIExample walks the paper's Table I setup (§IV-D.3): k = k0 = 3,
// n = 4 (so k' = 3), three requesting neighbors. With wanted-bit vectors
// v1=1101, v2=1100, v3=0101 the distance formula d = q + k' - n gives
// d1=2, d2=1, d3=1, and the algorithm proceeds exactly as the paper
// narrates its first steps: P2 is the most popular packet (popularity 3)
// and is transmitted first, dropping v2 and v3 from the table; the next
// packet is the first to P2's right with maximal popularity, P4, which
// satisfies v1 and empties the table.
func TestTableIExample(t *testing.T) {
	s := schedFor(4, 3)
	s.OnSNACK(1, 0, bitsFrom("1101"))
	s.OnSNACK(2, 0, bitsFrom("1100"))
	s.OnSNACK(3, 0, bitsFrom("0101"))

	_, dist := s.Tracking(0)
	if dist[1] != 2 || dist[2] != 1 || dist[3] != 1 {
		t.Fatalf("distances %v, want v1=2 v2=1 v3=1", dist)
	}

	// Popularities: P1=2, P2=3, P3=0, P4=2 -> transmit P2 (index 1).
	u, idx, ok := s.Next()
	if !ok || u != 0 || idx != 1 {
		t.Fatalf("first transmission: unit=%d idx=%d ok=%v, want P2 (idx 1)", u, idx, ok)
	}
	// v2 and v3 reached distance zero and were removed; v1 has d=1 and
	// still wants P1 and P4. The scan starts right of P2: P3 has
	// popularity 0, P4 has 1 -> P4.
	bits, dist := s.Tracking(0)
	if len(dist) != 1 || dist[1] != 1 || bits[1] != "1001" {
		t.Fatalf("table after P2: bits=%v dist=%v", bits, dist)
	}
	_, idx, ok = s.Next()
	if !ok || idx != 3 {
		t.Fatalf("second transmission: idx=%d, want P4 (idx 3)", idx)
	}
	if s.Pending() {
		t.Fatal("table should be empty after two transmissions")
	}
}

func TestDistanceFormula(t *testing.T) {
	// q ones with k'=8, n=12: d = q + 8 - 12.
	s := schedFor(12, 8)
	all := packet.NewBitVector(12)
	all.SetAll()
	s.OnSNACK(1, 0, all)
	_, dist := s.Tracking(0)
	if dist[1] != 8 {
		t.Fatalf("all-ones distance %d, want k'=8", dist[1])
	}
	// Exactly 8 transmissions satisfy the requester.
	count := 0
	for {
		if _, _, ok := s.Next(); !ok {
			break
		}
		count++
	}
	if count != 8 {
		t.Fatalf("transmitted %d, want 8", count)
	}
}

func TestRequesterAlreadySatisfiedDropped(t *testing.T) {
	s := schedFor(12, 8)
	// Only 3 missing but k'=8 of 12 means it already holds 9 >= 8.
	s.OnSNACK(1, 0, bitsFrom("111000000000"))
	if s.Pending() {
		t.Fatal("satisfiable requester should not create work")
	}
}

func TestPopularityDrivenOrder(t *testing.T) {
	s := schedFor(4, 4)
	s.OnSNACK(1, 0, bitsFrom("1100"))
	s.OnSNACK(2, 0, bitsFrom("0100"))
	u, idx, _ := s.Next()
	if u != 0 || idx != 1 {
		t.Fatalf("most popular packet not chosen: idx=%d", idx)
	}
}

func TestRoundRobinTieBreak(t *testing.T) {
	s := schedFor(4, 4)
	s.OnSNACK(1, 0, bitsFrom("1111"))
	order := []int{}
	for {
		_, idx, ok := s.Next()
		if !ok {
			break
		}
		order = append(order, idx)
	}
	if len(order) != 4 || order[0] != 0 || order[1] != 1 || order[2] != 2 || order[3] != 3 {
		t.Fatalf("tie-break order %v, want 0,1,2,3", order)
	}
}

func TestRoundRobinPointerPersistsAcrossRounds(t *testing.T) {
	// After serving packets 0..3 of a round, a fresh request round must
	// continue to the right (fresh encoded packets), not rescan from 0.
	s := schedFor(8, 8)
	s.OnSNACK(1, 0, bitsFrom("11110000"))
	if got := len(drainAll(s)); got != 4 {
		t.Fatalf("first round sent %d", got)
	}
	s.OnSNACK(1, 0, bitsFrom("00001111")) // next round of needs
	_, idx, ok := s.Next()
	if !ok || idx != 4 {
		t.Fatalf("second round should continue at index 4, got %d", idx)
	}
}

func TestLowestUnitFirst(t *testing.T) {
	s := schedFor(4, 4)
	s.OnSNACK(1, 5, bitsFrom("1000"))
	s.OnSNACK(2, 2, bitsFrom("0100"))
	u, _, _ := s.Next()
	if u != 2 {
		t.Fatalf("served unit %d first, want 2", u)
	}
}

func TestOnDataOverheardUpdatesTable(t *testing.T) {
	s := schedFor(4, 4) // no redundancy: requester needs all 3 wanted packets
	s.OnSNACK(1, 0, bitsFrom("1110"))
	// Another server transmits indices 0 and 1: distance drops 3 -> 1.
	s.OnDataOverheard(0, 0)
	s.OnDataOverheard(0, 1)
	sent := drainAll(s)
	if len(sent) != 1 || sent[0] != 2 {
		t.Fatalf("after overhearing, should send only index 2: %v", sent)
	}
}

func TestOnDataOverheardCanSatisfyRequester(t *testing.T) {
	s := schedFor(4, 3)
	s.OnSNACK(1, 0, bitsFrom("1110")) // d = 3+3-4 = 2
	// Two overheard packets the requester wanted cover its distance.
	s.OnDataOverheard(0, 0)
	s.OnDataOverheard(0, 1)
	if s.Pending() {
		t.Fatal("requester should be satisfied by overheard transmissions")
	}
}

func TestDropRequester(t *testing.T) {
	s := schedFor(4, 4)
	s.OnSNACK(1, 0, bitsFrom("1111"))
	s.OnSNACK(2, 1, bitsFrom("1111"))
	s.DropRequester(1)
	sent := 0
	for {
		if _, _, ok := s.Next(); !ok {
			break
		}
		sent++
	}
	if sent != 4 {
		t.Fatalf("after dropping requester 1, %d transmissions, want 4 (unit 1 only)", sent)
	}
}

func TestMalformedBitLengthIgnored(t *testing.T) {
	s := schedFor(4, 4)
	s.OnSNACK(1, 0, bitsFrom("11111")) // 5 bits for a 4-packet unit
	if s.Pending() {
		t.Fatal("malformed SNACK created work")
	}
}

func TestSchedulerNeverExceedsUnionCount(t *testing.T) {
	// Property from the paper's motivation: the greedy scheduler transmits
	// at most as many packets as the union policy would for the same
	// requests (it stops when every distance reaches zero).
	reqs := []struct {
		from packet.NodeID
		bits string
	}{
		{1, "110101101010"},
		{2, "011011010110"},
		{3, "111000111000"},
	}
	sched := schedFor(12, 8)
	for _, r := range reqs {
		sched.OnSNACK(r.from, 0, bitsFrom(r.bits))
	}
	schedCount := len(drainAll(sched))

	union := packet.NewBitVector(12)
	for _, r := range reqs {
		union.Or(bitsFrom(r.bits))
	}
	if schedCount > union.Count() {
		t.Fatalf("scheduler sent %d > union %d", schedCount, union.Count())
	}
}

func TestResetClearsPointer(t *testing.T) {
	s := schedFor(4, 4)
	s.OnSNACK(1, 0, bitsFrom("1111"))
	drainAll(s)
	s.Reset()
	s.OnSNACK(1, 0, bitsFrom("1111"))
	_, idx, _ := s.Next()
	if idx != 0 {
		t.Fatalf("after Reset, expected scan from 0, got %d", idx)
	}
}

func drainAll(s *Scheduler) []int {
	var out []int
	for {
		_, idx, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, idx)
	}
}
