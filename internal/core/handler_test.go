package core

import (
	"bytes"
	"math/rand"
	"testing"

	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/metrics"
)

func testParams() image.Params {
	return image.Params{PacketPayload: 32, K: 4, N: 6}
}

type fixture struct {
	obj    *Object
	data   []byte
	key    *sign.KeyPair
	chain  *puzzle.Chain
	pp     puzzle.Params
	col    *metrics.Collector
	sigCtx func() *dissem.SigContext
}

func newFixture(t *testing.T, size int, params image.Params) *fixture {
	t.Helper()
	key, err := sign.GenerateDeterministic(6)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := puzzle.NewChain([]byte("core-test"), 4)
	if err != nil {
		t.Fatal(err)
	}
	pp := puzzle.Params{Strength: 4}
	data := image.Random(size, 3)
	obj, err := Build(BuildInput{Version: 1, Image: data, Params: params, Key: key, Chain: chain, Puzzle: pp})
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.New()
	f := &fixture{obj: obj, data: data, key: key, chain: chain, pp: pp, col: col}
	f.sigCtx = func() *dissem.SigContext {
		return &dissem.SigContext{Pub: key.Public(), Commitment: chain.Commitment(), Puzzle: pp, Col: col}
	}
	return f
}

func (f *fixture) receiver(t *testing.T, params image.Params) *Handler {
	t.Helper()
	h, err := NewHandler(1, params, f.sigCtx())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func bootstrap(t *testing.T, f *fixture, dst *Handler) *Handler {
	t.Helper()
	src := Preload(f.obj, f.sigCtx())
	sig := src.SigPacket(0)
	if !dst.PreVerifySig(sig) {
		t.Fatal("genuine signature failed weak check")
	}
	if res := dst.IngestSig(sig); res != dissem.UnitComplete {
		t.Fatalf("sig ingest: %v", res)
	}
	return src
}

// deliverSubset feeds dst an arbitrary subset of each unit's packets (chosen
// by rng) of size exactly NeededInUnit — the loss-resilience contract.
func deliverSubset(t *testing.T, src, dst *Handler, rng *rand.Rand) {
	t.Helper()
	for dst.CompleteUnits() < dst.TotalUnits() {
		u := dst.CompleteUnits()
		n := dst.PacketsInUnit(u)
		need := dst.NeededInUnit(u)
		idxs := rng.Perm(n)[:need]
		before := dst.CompleteUnits()
		for _, idx := range idxs {
			pkts, err := src.Packets(u, []int{idx}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res := dst.Ingest(pkts[0]); res == dissem.Rejected {
				t.Fatalf("unit %d idx %d rejected", u, idx)
			}
		}
		if dst.CompleteUnits() != before+1 {
			t.Fatalf("unit %d incomplete after %d packets", u, need)
		}
	}
}

func TestAnyKPrimeSubsetRecoversImage(t *testing.T) {
	f := newFixture(t, 300, testParams())
	for seed := int64(0); seed < 10; seed++ {
		dst := f.receiver(t, testParams())
		src := bootstrap(t, f, dst)
		deliverSubset(t, src, dst, rand.New(rand.NewSource(seed)))
		got, err := dst.ReassembledImage(len(f.data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, f.data) {
			t.Fatalf("seed %d: image mismatch", seed)
		}
	}
}

func TestReceiverRegeneratesIdenticalPackets(t *testing.T) {
	// The crux of LR-Seluge: any node that decoded a page can regenerate
	// exactly the packets the base station built (same code instance), so
	// hash chaining keeps verifying across hops.
	f := newFixture(t, 300, testParams())
	mid := f.receiver(t, testParams())
	src := bootstrap(t, f, mid)
	deliverSubset(t, src, mid, rand.New(rand.NewSource(1)))

	for u := 1; u < mid.TotalUnits(); u++ {
		for idx := 0; idx < mid.PacketsInUnit(u); idx++ {
			a, err := src.Packets(u, []int{idx}, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, err := mid.Packets(u, []int{idx}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a[0].Payload, b[0].Payload) {
				t.Fatalf("unit %d idx %d: regenerated payload differs", u, idx)
			}
		}
	}
}

func TestRelayedTransferVerifies(t *testing.T) {
	f := newFixture(t, 300, testParams())
	mid := f.receiver(t, testParams())
	src := bootstrap(t, f, mid)
	deliverSubset(t, src, mid, rand.New(rand.NewSource(2)))

	dst := f.receiver(t, testParams())
	sig := mid.SigPacket(3)
	if !dst.PreVerifySig(sig) || dst.IngestSig(sig) != dissem.UnitComplete {
		t.Fatal("relayed signature rejected")
	}
	deliverSubset(t, mid, dst, rand.New(rand.NewSource(3)))
	got, err := dst.ReassembledImage(len(f.data))
	if err != nil || !bytes.Equal(got, f.data) {
		t.Fatalf("relayed image mismatch: %v", err)
	}
}

func TestForgedPacketsRejected(t *testing.T) {
	f := newFixture(t, 300, testParams())
	dst := f.receiver(t, testParams())
	src := bootstrap(t, f, dst)

	// Forged M0 shard.
	m0, _ := src.Packets(1, []int{0}, 0)
	forged := *m0[0]
	forged.Payload = append([]byte(nil), m0[0].Payload...)
	forged.Payload[0] ^= 1
	if res := dst.Ingest(&forged); res != dissem.Rejected {
		t.Fatalf("forged M0: %v", res)
	}

	// Complete M0, then forge page packets.
	for idx := 0; idx < dst.NeededInUnit(1); idx++ {
		pkts, _ := src.Packets(1, []int{idx}, 0)
		dst.Ingest(pkts[0])
	}
	if dst.CompleteUnits() != 2 {
		t.Fatal("M0 should be complete")
	}
	page, _ := src.Packets(2, []int{1}, 0)
	fp := *page[0]
	fp.Payload = append([]byte(nil), page[0].Payload...)
	fp.Payload[3] ^= 0x80
	if res := dst.Ingest(&fp); res != dissem.Rejected {
		t.Fatalf("forged page packet: %v", res)
	}
	// Position replay.
	misplaced := *page[0]
	misplaced.Index = 2
	if res := dst.Ingest(&misplaced); res != dissem.Rejected {
		t.Fatalf("misplaced page packet: %v", res)
	}
	// Wrong payload length.
	short := *page[0]
	short.Payload = page[0].Payload[:len(page[0].Payload)-1]
	if res := dst.Ingest(&short); res != dissem.Rejected {
		t.Fatalf("short page packet: %v", res)
	}
}

func TestDuplicateShardsDoNotComplete(t *testing.T) {
	f := newFixture(t, 300, testParams())
	dst := f.receiver(t, testParams())
	src := bootstrap(t, f, dst)
	// Feed the same M0 shard repeatedly: the unit must not complete.
	pkts, _ := src.Packets(1, []int{0}, 0)
	if res := dst.Ingest(pkts[0]); res == dissem.Rejected {
		t.Fatal("genuine shard rejected")
	}
	for i := 0; i < 10; i++ {
		if res := dst.Ingest(pkts[0]); res != dissem.Duplicate {
			t.Fatalf("duplicate ingest: %v", res)
		}
	}
	if dst.CompleteUnits() != 1 {
		t.Fatal("duplicates advanced completion")
	}
}

func TestPageByPageGating(t *testing.T) {
	f := newFixture(t, 300, testParams())
	dst := f.receiver(t, testParams())
	src := bootstrap(t, f, dst)
	page, _ := src.Packets(2, []int{0}, 0)
	if res := dst.Ingest(page[0]); res != dissem.Stale {
		t.Fatalf("page before M0: %v", res)
	}
}

func TestTotalUnitsUnknownUntilSig(t *testing.T) {
	f := newFixture(t, 300, testParams())
	dst := f.receiver(t, testParams())
	if dst.TotalUnits() != 0 || dst.CompleteUnits() != 0 || !dst.WantsSig() {
		t.Fatal("fresh handler state wrong")
	}
	dst.LearnTotal(99) // unauthenticated hints must be ignored
	if dst.TotalUnits() != 0 {
		t.Fatal("unauthenticated total accepted")
	}
}

func TestGeometryMatchesBetweenBuilderAndHandler(t *testing.T) {
	f := newFixture(t, 300, testParams())
	dst := f.receiver(t, testParams())
	if dst.PacketsInUnit(1) != f.obj.M0Packets() {
		t.Fatalf("M0 packet count mismatch: handler %d, builder %d", dst.PacketsInUnit(1), f.obj.M0Packets())
	}
	if dst.NeededInUnit(1) != f.obj.M0Needed() {
		t.Fatal("M0 needed mismatch")
	}
	if dst.PacketsInUnit(2) != testParams().N || dst.NeededInUnit(2) != testParams().K {
		t.Fatal("page unit sizing wrong")
	}
}

func TestM0GeometryRedundancyMatchesPageCode(t *testing.T) {
	for _, n := range []int{8, 16, 48, 56, 64} {
		p := image.Params{PacketPayload: 72, K: 8, N: n}
		if n > 8*4 { // keep LRPageBytes positive for the sweep
			continue
		}
		geom, err := geometryFor(p)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if geom.numEnc*p.K < geom.numPlain*p.N {
			t.Fatalf("n=%d: M0 code less redundant than page code", n)
		}
		if geom.blockSize+geom.depth*8 > p.PacketPayload {
			t.Fatalf("n=%d: M0 packet exceeds payload", n)
		}
	}
}

func TestDefaultParamsGeometry(t *testing.T) {
	geom, err := geometryFor(image.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if geom.numPlain > geom.numEnc || geom.numEnc > 256 {
		t.Fatalf("bad geometry %+v", geom)
	}
}

func TestPacketsErrors(t *testing.T) {
	f := newFixture(t, 300, testParams())
	src := Preload(f.obj, f.sigCtx())
	if _, err := src.Packets(99, []int{0}, 0); err == nil {
		t.Fatal("unheld unit served")
	}
	if _, err := src.Packets(2, []int{77}, 0); err == nil {
		t.Fatal("bad index served")
	}
	empty := f.receiver(t, testParams())
	if _, err := empty.Packets(1, []int{0}, 0); err == nil {
		t.Fatal("empty handler served")
	}
}

func TestPreloadServesEverything(t *testing.T) {
	f := newFixture(t, 300, testParams())
	src := Preload(f.obj, f.sigCtx())
	if src.CompleteUnits() != src.TotalUnits() {
		t.Fatal("preload incomplete")
	}
	got, err := src.ReassembledImage(len(f.data))
	if err != nil || !bytes.Equal(got, f.data) {
		t.Fatalf("preload image mismatch: %v", err)
	}
}
