package core

import (
	"lrseluge/internal/detmap"
	"lrseluge/internal/dissem"
	"lrseluge/internal/packet"
)

// Scheduler is LR-Seluge's greedy round-robin transmission scheduler (paper
// §IV-D.3, Table I): a serving node maintains a tracking table with one
// entry per requesting neighbor (its wanted-packet bit vector and its
// distance d_v = q + k' - n, the number of additional packets it needs) and
// repeatedly transmits the packet wanted by the most neighbors, breaking
// ties round-robin to the right of the previously transmitted index.
//
// This lets one transmission satisfy many neighbors at once and stops as
// soon as every neighbor's distance reaches zero — far fewer transmissions
// than the union policy when losses decorrelate the neighbors' needs.
type Scheduler struct {
	sizeOf   func(unit int) int
	neededOf func(unit int) int
	units    map[int]*trackTable
	// lastIdx persists the round-robin pointer per unit across tracking
	// table drain/recreate cycles, so later request rounds continue into
	// fresh (never-transmitted) encoded packets instead of rescanning from
	// index 0 — fresh packets help every receiver that still needs any.
	lastIdx map[int]int
}

type trackTable struct {
	entries map[packet.NodeID]*trackEntry
	last    int // index of the most recently transmitted packet; -1 initially
}

type trackEntry struct {
	bits packet.BitVector
	dist int
}

var _ dissem.TxPolicy = (*Scheduler)(nil)

// NewScheduler creates a scheduler; sizeOf and neededOf map a unit to its
// packet count n and recovery threshold k'.
func NewScheduler(sizeOf, neededOf func(unit int) int) *Scheduler {
	return &Scheduler{
		sizeOf:   sizeOf,
		neededOf: neededOf,
		units:    make(map[int]*trackTable),
		lastIdx:  make(map[int]int),
	}
}

// OnSNACK implements dissem.TxPolicy: create or refresh the tracking entry
// for the requester. The distance is d_v = q + k' - n where q is the number
// of requested packets (paper §IV-D.3).
func (s *Scheduler) OnSNACK(from packet.NodeID, u int, bits packet.BitVector) {
	n := s.sizeOf(u)
	if bits.Len() != n {
		return // malformed request
	}
	q := bits.Count()
	dist := q + s.neededOf(u) - n
	tbl := s.units[u]
	if q == 0 || dist <= 0 {
		// The requester can already recover the unit; clear any state.
		if tbl != nil {
			delete(tbl.entries, from)
			if len(tbl.entries) == 0 {
				delete(s.units, u)
			}
		}
		return
	}
	if tbl == nil {
		last, ok := s.lastIdx[u]
		if !ok {
			last = -1
		}
		tbl = &trackTable{entries: make(map[packet.NodeID]*trackEntry), last: last}
		s.units[u] = tbl
	}
	tbl.entries[from] = &trackEntry{bits: bits.Clone(), dist: dist}
}

// OnDataOverheard implements dissem.TxPolicy: another node just broadcast
// packet idx of unit u; the tracking table is updated exactly as if we had
// transmitted it ourselves (requesters in range received it; any that
// missed it will re-SNACK).
func (s *Scheduler) OnDataOverheard(u, idx int) {
	tbl := s.units[u]
	if tbl == nil || idx < 0 || idx >= s.sizeOf(u) {
		return
	}
	//lrlint:ignore scan-complexity entries holds only in-range requesters with live SNACKs; trip count is node degree, not network size
	for _, id := range detmap.SortedKeys(tbl.entries) {
		e := tbl.entries[id]
		if e.bits.Get(idx) {
			e.bits.Set(idx, false)
			e.dist--
			if e.dist <= 0 {
				delete(tbl.entries, id)
			}
		}
	}
	if len(tbl.entries) == 0 {
		delete(s.units, u)
	}
}

// Next implements dissem.TxPolicy: serve the lowest pending unit; within it
// transmit the most popular packet, scanning right from the last transmitted
// index on ties.
func (s *Scheduler) Next() (int, int, bool) {
	for {
		u, tbl, ok := s.lowestUnit()
		if !ok {
			return 0, 0, false
		}
		n := s.sizeOf(u)
		pop := make([]int, n)
		maxPop := 0
		// Integer popularity tallies commute, so entry order cannot leak
		// into pop[]; sorting here would only cost the hot path.
		//lrlint:ignore effect-purity per-index vote counts are order-insensitive integer sums
		for _, e := range tbl.entries { //lrlint:ignore scan-complexity entries holds only in-range requesters with live SNACKs; trip count is node degree
			for j := 0; j < n; j++ {
				if e.bits.Get(j) {
					pop[j]++
					if pop[j] > maxPop {
						maxPop = pop[j]
					}
				}
			}
		}
		if maxPop == 0 {
			// Entries with positive distance but no wanted bits cannot
			// occur for well-formed requests; drop the stale table.
			delete(s.units, u)
			continue
		}
		// Scan circularly starting just right of the last transmission
		// (or from index 0 initially, which also realizes the
		// lowest-index tie-break of the first pick).
		start := 0
		if tbl.last >= 0 {
			start = (tbl.last + 1) % n
		}
		choice := -1
		for off := 0; off < n; off++ {
			j := (start + off) % n
			if pop[j] == maxPop {
				choice = j
				break
			}
		}
		// Update the table: clear column `choice`, decrement distances of
		// the neighbors that wanted it, and drop satisfied entries.
		//lrlint:ignore scan-complexity entries holds only in-range requesters with live SNACKs; trip count is node degree, not network size
		for _, id := range detmap.SortedKeys(tbl.entries) {
			e := tbl.entries[id]
			if e.bits.Get(choice) {
				e.bits.Set(choice, false)
				e.dist--
				if e.dist <= 0 {
					delete(tbl.entries, id)
				}
			}
		}
		tbl.last = choice
		s.lastIdx[u] = choice
		if len(tbl.entries) == 0 {
			delete(s.units, u)
		}
		return u, choice, true
	}
}

// Pending implements dissem.TxPolicy.
func (s *Scheduler) Pending() bool {
	for _, tbl := range s.units {
		if len(tbl.entries) > 0 {
			return true
		}
	}
	return false
}

// DropRequester implements dissem.TxPolicy: the denial-of-receipt defense
// removes all state for the offending neighbor.
func (s *Scheduler) DropRequester(from packet.NodeID) {
	for u, tbl := range s.units {
		delete(tbl.entries, from)
		if len(tbl.entries) == 0 {
			delete(s.units, u)
		}
	}
}

// Reset implements dissem.TxPolicy.
func (s *Scheduler) Reset() {
	s.units = make(map[int]*trackTable)
	s.lastIdx = make(map[int]int)
}

// Tracking returns the current wanted-bit vectors and distances for a unit,
// exposed for tests reproducing the paper's Table I.
func (s *Scheduler) Tracking(u int) (map[packet.NodeID]string, map[packet.NodeID]int) {
	tbl := s.units[u]
	if tbl == nil {
		return nil, nil
	}
	bits := make(map[packet.NodeID]string, len(tbl.entries))
	dist := make(map[packet.NodeID]int, len(tbl.entries))
	for _, id := range detmap.SortedKeys(tbl.entries) {
		bits[id] = tbl.entries[id].bits.String()
		dist[id] = tbl.entries[id].dist
	}
	return bits, dist
}

func (s *Scheduler) lowestUnit() (int, *trackTable, bool) {
	if len(s.units) == 0 {
		return 0, nil, false
	}
	for _, u := range detmap.SortedKeys(s.units) {
		if len(s.units[u].entries) > 0 {
			return u, s.units[u], true
		}
		delete(s.units, u)
	}
	return 0, nil, false
}
