package core

import (
	"lrseluge/internal/dissem"
	"lrseluge/internal/packet"
)

// Scheduler is LR-Seluge's greedy round-robin transmission scheduler (paper
// §IV-D.3, Table I): a serving node maintains a tracking table with one
// entry per requesting neighbor (its wanted-packet bit vector and its
// distance d_v = q + k' - n, the number of additional packets it needs) and
// repeatedly transmits the packet wanted by the most neighbors, breaking
// ties round-robin to the right of the previously transmitted index.
//
// This lets one transmission satisfy many neighbors at once and stops as
// soon as every neighbor's distance reaches zero — far fewer transmissions
// than the union policy when losses decorrelate the neighbors' needs.
//
// State is laid out for scale: tracking tables are slices indexed by unit,
// entries are id-sorted slices (iteration order matches the old
// detmap.SortedKeys map walk bit for bit), and entry bit vectors plus the
// popularity tally are recycled, so a serving node's footprint is
// O(pages + neighbors) with no steady-state allocation.
type Scheduler struct {
	sizeOf   func(unit int) int
	neededOf func(unit int) int
	// units is indexed by unit number (bounded by the object's TotalUnits,
	// i.e. pages+2); nil means no tracking table.
	units []*trackTable
	// lastIdx persists the round-robin pointer per unit across tracking
	// table drain/recreate cycles, so later request rounds continue into
	// fresh (never-transmitted) encoded packets instead of rescanning from
	// index 0 — fresh packets help every receiver that still needs any.
	// -1 means never transmitted.
	lastIdx []int
	// pop is the reusable per-packet popularity tally for Next.
	pop []int
}

// trackTable holds one unit's tracking entries, sorted by requester id.
type trackTable struct {
	entries []trackEntry
	// spare recycles the bit-vector storage of removed entries.
	spare []packet.BitVector
	last  int // index of the most recently transmitted packet; -1 initially
}

type trackEntry struct {
	id   packet.NodeID
	bits packet.BitVector
	dist int
}

var _ dissem.TxPolicy = (*Scheduler)(nil)

// NewScheduler creates a scheduler; sizeOf and neededOf map a unit to its
// packet count n and recovery threshold k'.
func NewScheduler(sizeOf, neededOf func(unit int) int) *Scheduler {
	return &Scheduler{
		sizeOf:   sizeOf,
		neededOf: neededOf,
	}
}

// tableOf returns the tracking table for a unit, or nil.
func (s *Scheduler) tableOf(u int) *trackTable {
	if u < 0 || u >= len(s.units) {
		return nil
	}
	return s.units[u]
}

// find binary-searches the sorted entries for id, returning its index and
// whether it is present (the index is the insertion point when absent).
func (tbl *trackTable) find(id packet.NodeID) (int, bool) {
	lo, hi := 0, len(tbl.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if tbl.entries[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(tbl.entries) && tbl.entries[lo].id == id
}

// removeAt splices out entry i, recycling its bit-vector storage.
func (tbl *trackTable) removeAt(i int) {
	tbl.spare = append(tbl.spare, tbl.entries[i].bits)
	tbl.entries = append(tbl.entries[:i], tbl.entries[i+1:]...)
}

// OnSNACK implements dissem.TxPolicy: create or refresh the tracking entry
// for the requester. The distance is d_v = q + k' - n where q is the number
// of requested packets (paper §IV-D.3).
func (s *Scheduler) OnSNACK(from packet.NodeID, u int, bits packet.BitVector) {
	n := s.sizeOf(u)
	if bits.Len() != n {
		return // malformed request
	}
	q := bits.Count()
	dist := q + s.neededOf(u) - n
	tbl := s.tableOf(u)
	if q == 0 || dist <= 0 {
		// The requester can already recover the unit; clear any state.
		if tbl != nil {
			if i, ok := tbl.find(from); ok {
				tbl.removeAt(i)
			}
			if len(tbl.entries) == 0 {
				s.units[u] = nil
			}
		}
		return
	}
	if tbl == nil {
		for u >= len(s.units) {
			s.units = append(s.units, nil)
			s.lastIdx = append(s.lastIdx, -1)
		}
		tbl = &trackTable{last: s.lastIdx[u]}
		s.units[u] = tbl
	}
	i, ok := tbl.find(from)
	if ok {
		tbl.entries[i].bits = tbl.entries[i].bits.CopyFrom(bits)
		tbl.entries[i].dist = dist
		return
	}
	var store packet.BitVector
	if n := len(tbl.spare); n > 0 {
		store = tbl.spare[n-1]
		tbl.spare = tbl.spare[:n-1]
		store = store.CopyFrom(bits)
	} else {
		store = bits.Clone()
	}
	tbl.entries = append(tbl.entries, trackEntry{})
	copy(tbl.entries[i+1:], tbl.entries[i:])
	tbl.entries[i] = trackEntry{id: from, bits: store, dist: dist}
}

// OnDataOverheard implements dissem.TxPolicy: another node just broadcast
// packet idx of unit u; the tracking table is updated exactly as if we had
// transmitted it ourselves (requesters in range received it; any that
// missed it will re-SNACK).
func (s *Scheduler) OnDataOverheard(u, idx int) {
	tbl := s.tableOf(u)
	if tbl == nil || idx < 0 || idx >= s.sizeOf(u) {
		return
	}
	s.clearColumn(tbl, idx)
	if len(tbl.entries) == 0 {
		s.units[u] = nil
	}
}

// clearColumn marks packet idx received by every entry that wanted it,
// dropping entries whose distance reaches zero. Entries are walked in
// ascending id order with in-place compaction.
func (s *Scheduler) clearColumn(tbl *trackTable, idx int) {
	keep := tbl.entries[:0]
	for i := range tbl.entries {
		e := &tbl.entries[i]
		if e.bits.Get(idx) {
			e.bits.Set(idx, false)
			e.dist--
			if e.dist <= 0 {
				tbl.spare = append(tbl.spare, e.bits)
				continue
			}
		}
		keep = append(keep, *e)
	}
	for i := len(keep); i < len(tbl.entries); i++ {
		tbl.entries[i] = trackEntry{}
	}
	tbl.entries = keep
}

// Next implements dissem.TxPolicy: serve the lowest pending unit; within it
// transmit the most popular packet, scanning right from the last transmitted
// index on ties.
func (s *Scheduler) Next() (int, int, bool) {
	for {
		u, tbl, ok := s.lowestUnit()
		if !ok {
			return 0, 0, false
		}
		n := s.sizeOf(u)
		if cap(s.pop) < n {
			s.pop = make([]int, n)
		}
		pop := s.pop[:n]
		for j := range pop {
			pop[j] = 0
		}
		maxPop := 0
		for i := range tbl.entries {
			e := &tbl.entries[i]
			for j := 0; j < n; j++ {
				if e.bits.Get(j) {
					pop[j]++
					if pop[j] > maxPop {
						maxPop = pop[j]
					}
				}
			}
		}
		if maxPop == 0 {
			// Entries with positive distance but no wanted bits cannot
			// occur for well-formed requests; drop the stale table.
			s.units[u] = nil
			continue
		}
		// Scan circularly starting just right of the last transmission
		// (or from index 0 initially, which also realizes the
		// lowest-index tie-break of the first pick).
		start := 0
		if tbl.last >= 0 {
			start = (tbl.last + 1) % n
		}
		choice := -1
		for off := 0; off < n; off++ {
			j := (start + off) % n
			if pop[j] == maxPop {
				choice = j
				break
			}
		}
		// Update the table: clear column `choice`, decrement distances of
		// the neighbors that wanted it, and drop satisfied entries.
		s.clearColumn(tbl, choice)
		tbl.last = choice
		s.lastIdx[u] = choice
		if len(tbl.entries) == 0 {
			s.units[u] = nil
		}
		return u, choice, true
	}
}

// Pending implements dissem.TxPolicy.
func (s *Scheduler) Pending() bool {
	for _, tbl := range s.units {
		if tbl != nil && len(tbl.entries) > 0 {
			return true
		}
	}
	return false
}

// DropRequester implements dissem.TxPolicy: the denial-of-receipt defense
// removes all state for the offending neighbor.
func (s *Scheduler) DropRequester(from packet.NodeID) {
	for u, tbl := range s.units {
		if tbl == nil {
			continue
		}
		if i, ok := tbl.find(from); ok {
			tbl.removeAt(i)
		}
		if len(tbl.entries) == 0 {
			s.units[u] = nil
		}
	}
}

// Reset implements dissem.TxPolicy.
func (s *Scheduler) Reset() {
	s.units = nil
	s.lastIdx = nil
}

// Tracking returns the current wanted-bit vectors and distances for a unit,
// exposed for tests reproducing the paper's Table I.
func (s *Scheduler) Tracking(u int) (map[packet.NodeID]string, map[packet.NodeID]int) {
	tbl := s.tableOf(u)
	if tbl == nil {
		return nil, nil
	}
	bits := make(map[packet.NodeID]string, len(tbl.entries))
	dist := make(map[packet.NodeID]int, len(tbl.entries))
	for i := range tbl.entries {
		bits[tbl.entries[i].id] = tbl.entries[i].bits.String()
		dist[tbl.entries[i].id] = tbl.entries[i].dist
	}
	return bits, dist
}

// lowestUnit returns the lowest unit with live entries, clearing drained
// tables on the way. The ascending scan reproduces the sorted-key order of
// the map-based implementation.
func (s *Scheduler) lowestUnit() (int, *trackTable, bool) {
	for u, tbl := range s.units {
		if tbl == nil {
			continue
		}
		if len(tbl.entries) > 0 {
			return u, tbl, true
		}
		s.units[u] = nil
	}
	return 0, nil, false
}
