// Package core implements LR-Seluge, the paper's contribution: loss-resilient
// AND attack-resilient code dissemination (paper §IV).
//
// Each page's k plaintext blocks — with the n hash images of the NEXT page's
// encoded packets appended — are expanded by a fixed-rate k-n-k' erasure code
// into n encoded packets, so a receiver recovers the page (and the next
// page's packet hashes) from ANY k' authenticated packets. The hash page M0
// carries the hash images of page 1's n encoded packets, is itself
// erasure-coded (k0-n0-k0') and authenticated by a Merkle tree whose root the
// base station signs, guarded by a message-specific puzzle.
//
// Unit numbering: unit 0 = signature, unit 1 = M0 (any k0' of n0 packets),
// units 2..g+1 = image pages 1..g (any k' of n packets).
package core

import (
	"fmt"

	"lrseluge/internal/crypt/hashx"
	"lrseluge/internal/crypt/merkle"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/erasure"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
)

// m0Geometry describes the hash-page code and Merkle tree, a deterministic
// function of the shared parameters so every node derives the same instance
// of the k0-n0-k0' code f0 (paper §IV-B).
type m0Geometry struct {
	depth     int // Merkle tree depth d; n0 = 2^d
	numEnc    int // n0
	numPlain  int // k0
	blockSize int // bytes per M0 block
}

// geometryFor picks the smallest Merkle depth d such that an M0 block plus
// its d sibling images fits the payload budget and the M0 code is at least
// as redundant as the page code (n0/k0 >= n/k). When no depth achieves that
// ratio (tiny payloads), it falls back to the feasible geometry with the
// highest redundancy.
func geometryFor(p image.Params) (m0Geometry, error) {
	hashPage := p.N * hashx.Size
	var best m0Geometry
	bestRatio := 0.0
	for d := 0; d <= 8; d++ {
		n0 := 1 << d
		block := p.PacketPayload - d*hashx.Size
		if block < 1 {
			break
		}
		k0 := (hashPage + block - 1) / block
		if k0 < 1 || k0 > n0 {
			continue
		}
		geom := m0Geometry{depth: d, numEnc: n0, numPlain: k0, blockSize: block}
		// Match or exceed the page code's redundancy: n0*k >= k0*n.
		if n0*p.K >= k0*p.N {
			return geom, nil
		}
		if ratio := float64(n0) / float64(k0); ratio > bestRatio {
			bestRatio = ratio
			best = geom
		}
	}
	if bestRatio > 0 {
		return best, nil
	}
	return m0Geometry{}, fmt.Errorf("core: no M0 geometry fits payload %d for n=%d", p.PacketPayload, p.N)
}

// BuildInput collects everything the base station needs to preprocess a code
// image (paper §IV-C).
type BuildInput struct {
	Version uint16
	Image   []byte
	Params  image.Params
	Key     *sign.KeyPair
	Chain   *puzzle.Chain
	Puzzle  puzzle.Params
}

// Object is the fully preprocessed code image held by the base station.
type Object struct {
	version   uint16
	params    image.Params
	imageSize int
	g         int

	codec  erasure.Codec // f: the k-n-k' page code
	codec0 erasure.Codec // f0: the k0-n0-k0' hash-page code
	geom   m0Geometry

	// pageBlocks[i-1] holds page i's k plaintext blocks (page bytes plus
	// the appended next-page hash images), the erasure-coder input.
	pageBlocks [][][]byte
	// pageEnc[i-1] caches the n encoded packets of page i.
	pageEnc [][][]byte
	// pageHashes[i-1] holds the hash images of page i's encoded packets.
	pageHashes [][]hashx.Image

	m0Plain [][]byte // k0 plain blocks of the padded hash page
	m0Enc   [][]byte // n0 encoded blocks
	tree    *merkle.Tree
	sig     *packet.Sig
}

// Build runs LR-Seluge's base-station preprocessing: pages are constructed
// in reverse order (paper §IV-C, Fig. 1) so each page's plaintext can carry
// the hash images of the next page's encoded packets.
func Build(in BuildInput) (*Object, error) {
	if err := in.Params.Validate(); err != nil {
		return nil, err
	}
	if in.Key == nil || in.Chain == nil {
		return nil, fmt.Errorf("core: missing signing key or puzzle chain")
	}
	p := in.Params
	codec, err := erasure.NewReedSolomon(p.K, p.N)
	if err != nil {
		return nil, err
	}
	geom, err := geometryFor(p)
	if err != nil {
		return nil, err
	}
	codec0, err := erasure.NewReedSolomon(geom.numPlain, geom.numEnc)
	if err != nil {
		return nil, err
	}
	pages, err := image.Partition(in.Image, p.LRPageBytes())
	if err != nil {
		return nil, err
	}
	g := len(pages)
	if g+2 > 250 {
		return nil, fmt.Errorf("core: image needs %d units, exceeding the unit space", g+2)
	}

	pageBlocks := make([][][]byte, g)
	pageEnc := make([][][]byte, g)
	pageHashes := make([][]hashx.Image, g)
	// appendix is h_{i+1,1} | ... | h_{i+1,n} while building page i; zeros
	// for page g (the final page has no successor to authenticate).
	appendix := make([]byte, p.N*hashx.Size)
	for i := g; i >= 1; i-- {
		plain := make([]byte, 0, p.K*p.PacketPayload)
		plain = append(plain, pages[i-1]...)
		plain = append(plain, appendix...)
		blocks, err := image.Blocks(plain, p.K)
		if err != nil {
			return nil, err
		}
		enc, err := codec.Encode(blocks)
		if err != nil {
			return nil, err
		}
		pageBlocks[i-1] = blocks
		pageEnc[i-1] = enc
		imgs := make([]hashx.Image, p.N)
		next := make([]byte, 0, p.N*hashx.Size)
		for j := 0; j < p.N; j++ {
			imgs[j] = hashx.Sum(authBody(packet.Unit(i+1), uint8(j), enc[j]))
			next = append(next, imgs[j][:]...)
		}
		pageHashes[i-1] = imgs
		appendix = next
	}

	// Hash page M0 = h_{1,1} | ... | h_{1,n}, padded, split into k0 blocks,
	// erasure-coded into n0 blocks, Merkle-authenticated.
	padded := make([]byte, geom.numPlain*geom.blockSize)
	copy(padded, appendix)
	m0Plain := make([][]byte, geom.numPlain)
	for j := range m0Plain {
		m0Plain[j] = padded[j*geom.blockSize : (j+1)*geom.blockSize]
	}
	m0Enc, err := codec0.Encode(m0Plain)
	if err != nil {
		return nil, err
	}
	tree, err := merkle.Build(m0Enc)
	if err != nil {
		return nil, err
	}

	sig := &packet.Sig{Version: in.Version, Pages: uint8(g), Root: tree.Root()}
	sigBytes, err := in.Key.Sign(sig.SignedMessage())
	if err != nil {
		return nil, err
	}
	sig.Signature = sigBytes
	key, err := in.Chain.Key(int(in.Version))
	if err != nil {
		return nil, err
	}
	sig.PuzzleKey = key
	sol, err := puzzle.Solve(in.Puzzle, sig.PuzzleMessage(), key)
	if err != nil {
		return nil, err
	}
	sig.PuzzleSol = sol

	return &Object{
		version:    in.Version,
		params:     p,
		imageSize:  len(in.Image),
		g:          g,
		codec:      codec,
		codec0:     codec0,
		geom:       geom,
		pageBlocks: pageBlocks,
		pageEnc:    pageEnc,
		pageHashes: pageHashes,
		m0Plain:    m0Plain,
		m0Enc:      m0Enc,
		tree:       tree,
		sig:        sig,
	}, nil
}

// Version returns the code version.
func (o *Object) Version() uint16 { return o.version }

// NumPages returns g.
func (o *Object) NumPages() int { return o.g }

// TotalUnits returns g+2.
func (o *Object) TotalUnits() int { return o.g + 2 }

// ImageSize returns the original image length.
func (o *Object) ImageSize() int { return o.imageSize }

// M0Packets returns n0.
func (o *Object) M0Packets() int { return o.geom.numEnc }

// M0Needed returns k0', the packets sufficient to recover M0.
func (o *Object) M0Needed() int { return o.geom.numPlain }

// Root returns the signed Merkle root.
func (o *Object) Root() hashx.Image { return o.tree.Root() }

// authBody replicates packet.Data.AuthBody for payloads not yet wrapped in
// a packet: the hash image covers (unit, index, payload), binding position
// as well as content.
func authBody(unit packet.Unit, index uint8, payload []byte) []byte {
	b := make([]byte, 0, 2+len(payload))
	b = append(b, byte(unit), index)
	b = append(b, payload...)
	return b
}
