package packet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBitVectorBasics(t *testing.T) {
	v := NewBitVector(10)
	if v.Len() != 10 || v.ByteLen() != 2 || v.Any() || v.Count() != 0 {
		t.Fatalf("fresh vector wrong: %+v", v)
	}
	v.Set(0, true)
	v.Set(9, true)
	if !v.Get(0) || !v.Get(9) || v.Get(5) {
		t.Fatal("Get/Set wrong")
	}
	if v.Count() != 2 || !v.Any() {
		t.Fatal("Count/Any wrong")
	}
	v.Set(0, false)
	if v.Get(0) || v.Count() != 1 {
		t.Fatal("clearing failed")
	}
}

func TestBitVectorSetAllRespectsLength(t *testing.T) {
	v := NewBitVector(11)
	v.SetAll()
	if v.Count() != 11 {
		t.Fatalf("SetAll count %d, want 11", v.Count())
	}
	// Slack bits in the final byte must stay clear so Count is exact.
	raw := v.Bytes()
	if raw[1]&^0x07 != 0 {
		t.Fatalf("slack bits set: %08b", raw[1])
	}
	v.Clear()
	if v.Any() {
		t.Fatal("Clear failed")
	}
}

func TestBitVectorOr(t *testing.T) {
	a := NewBitVector(8)
	b := NewBitVector(8)
	a.Set(1, true)
	b.Set(6, true)
	a.Or(b)
	if !a.Get(1) || !a.Get(6) || a.Count() != 2 {
		t.Fatal("Or wrong")
	}
}

func TestBitVectorOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := NewBitVector(8)
	b := NewBitVector(9)
	a.Or(b)
}

func TestBitVectorCloneIndependent(t *testing.T) {
	a := NewBitVector(8)
	a.Set(3, true)
	b := a.Clone()
	b.Set(3, false)
	if !a.Get(3) {
		t.Fatal("Clone shares storage")
	}
}

func TestBitVectorFromBytes(t *testing.T) {
	v := NewBitVector(12)
	v.Set(2, true)
	v.Set(11, true)
	back, err := BitVectorFromBytes(12, v.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != v.String() {
		t.Fatal("FromBytes roundtrip failed")
	}
	if _, err := BitVectorFromBytes(12, make([]byte, 1)); err == nil {
		t.Fatal("short input accepted")
	}
	// Slack bits in wire input must be masked off.
	raw := []byte{0x00, 0xff}
	masked, err := BitVectorFromBytes(9, raw)
	if err != nil {
		t.Fatal(err)
	}
	if masked.Count() != 1 {
		t.Fatalf("slack bits counted: %d", masked.Count())
	}
}

func TestBitVectorOutOfRangePanics(t *testing.T) {
	v := NewBitVector(4)
	for _, fn := range []func(){
		func() { v.Get(4) },
		func() { v.Get(-1) },
		func() { v.Set(4, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBitVectorString(t *testing.T) {
	v := NewBitVector(5)
	v.Set(0, true)
	v.Set(4, true)
	if v.String() != "10001" {
		t.Fatalf("String() = %q", v.String())
	}
}

func TestBitVectorCountMatchesString(t *testing.T) {
	prop := func(n uint8, seeds []bool) bool {
		size := int(n%64) + 1
		v := NewBitVector(size)
		for i := 0; i < size && i < len(seeds); i++ {
			v.Set(i, seeds[i])
		}
		return v.Count() == strings.Count(v.String(), "1")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
