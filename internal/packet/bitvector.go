package packet

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitVector is the fixed-length bit map carried in SNACK requests: bit j is
// set when the requester still needs packet j of the requested unit. In
// LR-Seluge the vector has n bits (one per encoded packet); in Deluge and
// Seluge it has k bits. The n-k extra bits are exactly the SNACK overhead
// the paper accounts for in its byte-level comparison (§VI).
type BitVector struct {
	n    int
	bits []byte
}

// NewBitVector returns an all-zero vector of n bits.
func NewBitVector(n int) BitVector {
	if n < 0 {
		panic("packet: negative bit vector length")
	}
	return BitVector{n: n, bits: make([]byte, (n+7)/8)}
}

// Len returns the number of bits.
func (v BitVector) Len() int { return v.n }

// ByteLen returns the wire size in bytes.
func (v BitVector) ByteLen() int { return len(v.bits) }

// Get reports bit i.
func (v BitVector) Get(i int) bool {
	v.check(i)
	return v.bits[i/8]&(1<<(uint(i)%8)) != 0
}

// Set sets bit i to val.
func (v BitVector) Set(i int, val bool) {
	v.check(i)
	if val {
		v.bits[i/8] |= 1 << (uint(i) % 8)
	} else {
		v.bits[i/8] &^= 1 << (uint(i) % 8)
	}
}

// SetAll sets every bit.
func (v BitVector) SetAll() {
	for i := range v.bits {
		v.bits[i] = 0xff
	}
	v.clearSlack()
}

// Clear zeroes every bit.
func (v BitVector) Clear() {
	for i := range v.bits {
		v.bits[i] = 0
	}
}

// Count returns the number of set bits (the q of the paper's distance
// formula d_v = q + k' - n).
func (v BitVector) Count() int {
	total := 0
	for _, b := range v.bits {
		total += bits.OnesCount8(b)
	}
	return total
}

// Any reports whether any bit is set.
func (v BitVector) Any() bool {
	for _, b := range v.bits {
		if b != 0 {
			return true
		}
	}
	return false
}

// Or merges other into v (set union). Lengths must match.
func (v BitVector) Or(other BitVector) {
	if v.n != other.n {
		panic(fmt.Sprintf("packet: bit vector length mismatch %d vs %d", v.n, other.n))
	}
	for i := range v.bits {
		v.bits[i] |= other.bits[i]
	}
}

// Clone returns an independent copy.
func (v BitVector) Clone() BitVector {
	out := BitVector{n: v.n, bits: make([]byte, len(v.bits))}
	copy(out.bits, v.bits)
	return out
}

// CopyFrom overwrites v with other's bits, reusing v's backing storage when
// the lengths match (the allocation-free alternative to Clone for pooled
// tracking-table entries). It returns the destination, which is freshly
// allocated only on a length mismatch or zero receiver.
func (v BitVector) CopyFrom(other BitVector) BitVector {
	if v.n != other.n || len(v.bits) != len(other.bits) {
		return other.Clone()
	}
	copy(v.bits, other.bits)
	return v
}

// Bytes returns the backing bytes (not a copy); used by Marshal.
func (v BitVector) Bytes() []byte { return v.bits }

// BitVectorFromBytes reconstructs a vector of n bits from wire bytes.
func BitVectorFromBytes(n int, b []byte) (BitVector, error) {
	want := (n + 7) / 8
	if len(b) != want {
		return BitVector{}, fmt.Errorf("packet: bit vector of %d bits needs %d bytes, got %d", n, want, len(b))
	}
	v := BitVector{n: n, bits: append([]byte(nil), b...)}
	v.clearSlack()
	return v, nil
}

// String renders the vector as a 0/1 string, LSB (packet 0) first.
func (v BitVector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func (v BitVector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("packet: bit index %d out of range [0,%d)", i, v.n))
	}
}

func (v BitVector) clearSlack() {
	if v.n%8 == 0 || len(v.bits) == 0 {
		return
	}
	v.bits[len(v.bits)-1] &= byte(1<<(uint(v.n)%8)) - 1
}
