package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lrseluge/internal/crypt/hashx"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
)

func TestAdvRoundTrip(t *testing.T) {
	a := &Adv{Src: 7, Version: 3, Units: 12, Total: 14}
	back, err := Unmarshal(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", a, back)
	}
}

func TestSNACKRoundTrip(t *testing.T) {
	bits := NewBitVector(48)
	bits.Set(0, true)
	bits.Set(13, true)
	bits.Set(47, true)
	s := &SNACK{Src: 2, Dest: 9, Version: 1, Unit: 5, Bits: bits}
	back, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got := back.(*SNACK)
	if got.Src != 2 || got.Dest != 9 || got.Version != 1 || got.Unit != 5 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Bits.Len() != 48 || got.Bits.Count() != 3 || !got.Bits.Get(13) {
		t.Fatalf("bit vector mismatch: %v", got.Bits)
	}
}

func TestDataRoundTrip(t *testing.T) {
	d := &Data{
		Src: 4, Version: 2, Unit: 7, Index: 31,
		Payload: []byte("block bytes here"),
		Proof:   []hashx.Image{hashx.Sum([]byte("p0")), hashx.Sum([]byte("p1"))},
	}
	back, err := Unmarshal(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("roundtrip mismatch")
	}
}

func TestSigRoundTrip(t *testing.T) {
	s := &Sig{
		Src: 0, Version: 1, Pages: 11,
		Root:      hashx.Sum([]byte("root")),
		Signature: bytes.Repeat([]byte{0xab}, sign.SignatureSize),
		PuzzleSol: 0xdeadbeef,
	}
	s.PuzzleKey[0] = 0x42
	back, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	bits := NewBitVector(37)
	bits.SetAll()
	pkts := []Packet{
		&Adv{Src: 1, Version: 2, Units: 3, Total: 9},
		&SNACK{Src: 1, Dest: 2, Version: 3, Unit: 4, Bits: bits},
		&Data{Src: 1, Version: 1, Unit: 2, Index: 3, Payload: make([]byte, 72)},
		&Data{Src: 1, Version: 1, Unit: 1, Index: 0, Payload: make([]byte, 40), Proof: make([]hashx.Image, 4)},
		&Sig{Src: 1, Version: 1, Pages: 5, Signature: make([]byte, sign.SignatureSize)},
	}
	for _, p := range pkts {
		if got := len(p.Marshal()) + LinkOverhead; got != p.WireSize() {
			t.Errorf("%T: WireSize %d != marshal+overhead %d", p, p.WireSize(), got)
		}
	}
}

func TestLRSnackLargerThanSelugeSnack(t *testing.T) {
	// The paper charges LR-Seluge n-k extra SNACK bits; the wire format
	// must reflect that.
	k := NewBitVector(32)
	n := NewBitVector(48)
	sk := &SNACK{Bits: k}
	sn := &SNACK{Bits: n}
	if sn.WireSize() <= sk.WireSize() {
		t.Fatalf("n-bit SNACK (%d B) not larger than k-bit SNACK (%d B)", sn.WireSize(), sk.WireSize())
	}
	if sn.WireSize()-sk.WireSize() != 2 {
		t.Fatalf("48-bit vs 32-bit SNACK should differ by 2 bytes, got %d", sn.WireSize()-sk.WireSize())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{byte(TypeAdv)},
		{byte(TypeAdv), 0, 1, 0, 1},          // header only, no body
		{99, 0, 1, 0, 1, 0},                  // unknown type
		{byte(TypeData), 0, 1, 0, 1, 2, 3},   // truncated data
		{byte(TypeSig), 0, 1, 0, 1, 2, 3, 4}, // truncated sig
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestDataPayloadLengthMismatchRejected(t *testing.T) {
	d := &Data{Src: 1, Version: 1, Unit: 2, Index: 3, Payload: []byte("abc")}
	raw := d.Marshal()
	raw = append(raw, 0xff) // trailing junk
	if _, err := Unmarshal(raw); err == nil {
		t.Fatal("trailing junk accepted")
	}
}

func TestAuthBodyBindsPosition(t *testing.T) {
	a := &Data{Unit: 1, Index: 2, Payload: []byte("x")}
	b := &Data{Unit: 1, Index: 3, Payload: []byte("x")}
	c := &Data{Unit: 2, Index: 2, Payload: []byte("x")}
	if bytes.Equal(a.AuthBody(), b.AuthBody()) || bytes.Equal(a.AuthBody(), c.AuthBody()) {
		t.Fatal("AuthBody does not bind unit/index")
	}
}

func TestSigMessagesBindFields(t *testing.T) {
	base := &Sig{Version: 1, Pages: 5, Root: hashx.Sum([]byte("r")), Signature: make([]byte, sign.SignatureSize)}
	v2 := *base
	v2.Version = 2
	p2 := *base
	p2.Pages = 6
	r2 := *base
	r2.Root = hashx.Sum([]byte("other"))
	for i, other := range []*Sig{&v2, &p2, &r2} {
		if bytes.Equal(base.SignedMessage(), other.SignedMessage()) {
			t.Errorf("case %d: SignedMessage does not bind the changed field", i)
		}
	}
	s2 := *base
	s2.Signature = bytes.Repeat([]byte{1}, sign.SignatureSize)
	if bytes.Equal(base.PuzzleMessage(), s2.PuzzleMessage()) {
		t.Fatal("PuzzleMessage does not bind the signature")
	}
}

func TestSigWireSizeConstant(t *testing.T) {
	s := &Sig{Signature: make([]byte, sign.SignatureSize)}
	want := LinkOverhead + 5 + 1 + hashx.Size + sign.SignatureSize + puzzle.KeySize + puzzle.SolutionSize
	if s.WireSize() != want {
		t.Fatalf("sig wire size %d, want %d", s.WireSize(), want)
	}
}

func TestRandomRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nbits := 1 + r.Intn(200)
		bits := NewBitVector(nbits)
		for i := 0; i < nbits; i++ {
			bits.Set(i, r.Intn(2) == 1)
		}
		s := &SNACK{
			Src:     NodeID(r.Intn(1 << 16)),
			Dest:    NodeID(r.Intn(1 << 16)),
			Version: uint16(r.Intn(1 << 16)),
			Unit:    Unit(r.Intn(256)),
			Bits:    bits,
		}
		back, err := Unmarshal(s.Marshal())
		if err != nil {
			return false
		}
		got := back.(*SNACK)
		return got.Src == s.Src && got.Dest == s.Dest && got.Bits.String() == s.Bits.String()
	}
	_ = rng
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
