// Package packet defines the over-the-air formats shared by Deluge, Seluge
// and LR-Seluge, with byte-exact size accounting.
//
// The paper compares schemes by total communication cost in bytes (§VI), so
// every packet type marshals to a deterministic wire image whose length,
// plus a fixed link-layer overhead, is the packet's accounted size.
//
// Packets exchanged inside the simulator are passed by pointer and MUST be
// treated as read-only by receivers; protocol code copies payloads before
// storing them.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lrseluge/internal/crypt/hashx"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
)

// NodeID identifies a node. The base station is node 0. On the wire, ids
// are serialized as 16-bit mica2-style short addresses (the paper's mote
// address width); the in-memory type is wider so large in-memory
// simulations (internal/scale, WireCheck off) can exceed 2^16 nodes. Wire
// round-trips — Marshal/Parse and radio.Config.WireCheck — are faithful
// only for ids below 1<<16.
type NodeID uint32

// Broadcast is the destination used for local broadcast; packets in these
// protocols are always broadcast, so it appears only in documentation.
const Broadcast NodeID = 0xffffffff

// Unit indexes a dissemination unit: unit 0 is the signature, unit 1 the
// hash page M0, units 2..g+1 the image pages 1..g for the secure protocols.
// Plain Deluge uses units 0..g-1 for pages directly.
type Unit uint8

// Type discriminates wire formats.
type Type uint8

// Packet types.
const (
	TypeAdv Type = iota + 1
	TypeSNACK
	TypeData
	TypeSig
)

// String implements fmt.Stringer for metrics output.
func (t Type) String() string {
	switch t {
	case TypeAdv:
		return "adv"
	case TypeSNACK:
		return "snack"
	case TypeData:
		return "data"
	case TypeSig:
		return "sig"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// LinkOverhead is the fixed per-packet link-layer cost in bytes (preamble,
// sync word, length, addressing, CRC) modeled after a mica2-class radio
// stack.
const LinkOverhead = 12

// header is the common app-layer prefix: type(1) | src(2) | version(2).
const headerSize = 5

// ErrTruncated reports a wire image too short for its declared type.
var ErrTruncated = errors.New("packet: truncated wire image")

// Packet is any over-the-air message.
type Packet interface {
	// Kind returns the wire type.
	Kind() Type
	// Source returns the transmitting node.
	Source() NodeID
	// WireSize returns the accounted size in bytes including LinkOverhead.
	WireSize() int
	// Marshal renders the app-layer wire image (excluding LinkOverhead).
	Marshal() []byte
}

// Adv is a Trickle-paced advertisement (paper §IV-D.1): the sender's code
// version and the number of complete units it possesses.
type Adv struct {
	Src     NodeID
	Version uint16
	Units   Unit // number of fully-possessed units of Version
	Total   Unit // total units of the object, 0 while unknown (object-size summary)
}

// Kind implements Packet.
func (a *Adv) Kind() Type { return TypeAdv }

// Source implements Packet.
func (a *Adv) Source() NodeID { return a.Src }

// WireSize implements Packet.
func (a *Adv) WireSize() int { return LinkOverhead + headerSize + 2 }

// Marshal implements Packet.
func (a *Adv) Marshal() []byte {
	b := make([]byte, 0, headerSize+2)
	b = appendHeader(b, TypeAdv, a.Src, a.Version)
	b = append(b, byte(a.Units), byte(a.Total))
	return b
}

// SNACK is a selective-NACK request for missing packets of one unit,
// addressed to a specific serving neighbor (paper §IV-D.1: "node v ...
// begins requesting the missing pages from node u"). Bits indicates which
// packet indices are still needed. Other neighbors overhear SNACKs for
// suppression but only Dest serves them.
type SNACK struct {
	Src     NodeID
	Dest    NodeID
	Version uint16
	Unit    Unit
	Bits    BitVector
}

// Kind implements Packet.
func (s *SNACK) Kind() Type { return TypeSNACK }

// Source implements Packet.
func (s *SNACK) Source() NodeID { return s.Src }

// WireSize implements Packet.
func (s *SNACK) WireSize() int {
	return LinkOverhead + headerSize + 2 + 1 + 2 + s.Bits.ByteLen()
}

// Marshal implements Packet.
func (s *SNACK) Marshal() []byte {
	b := make([]byte, 0, s.WireSize()-LinkOverhead)
	b = appendHeader(b, TypeSNACK, s.Src, s.Version)
	b = binary.BigEndian.AppendUint16(b, uint16(s.Dest))
	b = append(b, byte(s.Unit))
	b = binary.BigEndian.AppendUint16(b, uint16(s.Bits.Len()))
	b = append(b, s.Bits.Bytes()...)
	return b
}

// Data carries one (possibly erasure-encoded) block of a unit. For hash-page
// (M0) packets, Proof carries the Merkle sibling images bottom-up; for all
// other units Proof is empty.
type Data struct {
	Src     NodeID
	Version uint16
	Unit    Unit
	Index   uint8
	Payload []byte
	Proof   []hashx.Image
}

// Kind implements Packet.
func (d *Data) Kind() Type { return TypeData }

// Source implements Packet.
func (d *Data) Source() NodeID { return d.Src }

// WireSize implements Packet.
func (d *Data) WireSize() int {
	return LinkOverhead + headerSize + 2 + 1 + len(d.Proof)*hashx.Size + 2 + len(d.Payload)
}

// Marshal implements Packet.
func (d *Data) Marshal() []byte {
	b := make([]byte, 0, d.WireSize()-LinkOverhead)
	b = appendHeader(b, TypeData, d.Src, d.Version)
	b = append(b, byte(d.Unit), d.Index)
	b = append(b, byte(len(d.Proof)))
	for _, p := range d.Proof {
		b = append(b, p[:]...)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(d.Payload)))
	b = append(b, d.Payload...)
	return b
}

// AuthBody returns the byte string covered by the per-packet hash image:
// unit, index and payload. Receivers compare hashx.Sum(AuthBody()) with the
// expected image recovered from the previous page (paper §IV-E). Binding the
// unit and index prevents an adversary replaying a valid block under a
// different position.
func (d *Data) AuthBody() []byte {
	b := make([]byte, 0, 2+len(d.Payload))
	b = append(b, byte(d.Unit), d.Index)
	b = append(b, d.Payload...)
	return b
}

// Sig is the signature packet that bootstraps authentication: the Merkle
// root over M0's encoded blocks, the base station's signature, and the
// message-specific puzzle acting as weak authenticator (paper §IV-C.3).
type Sig struct {
	Src       NodeID
	Version   uint16
	Pages     uint8 // g, the number of image pages of this version
	Root      hashx.Image
	Signature []byte // fixed sign.SignatureSize bytes
	PuzzleKey puzzle.Key
	PuzzleSol uint64
}

// Kind implements Packet.
func (s *Sig) Kind() Type { return TypeSig }

// Source implements Packet.
func (s *Sig) Source() NodeID { return s.Src }

// WireSize implements Packet.
func (s *Sig) WireSize() int {
	return LinkOverhead + headerSize + 1 + hashx.Size + sign.SignatureSize + puzzle.KeySize + puzzle.SolutionSize
}

// Marshal implements Packet.
func (s *Sig) Marshal() []byte {
	b := make([]byte, 0, s.WireSize()-LinkOverhead)
	b = appendHeader(b, TypeSig, s.Src, s.Version)
	b = append(b, s.Pages)
	b = append(b, s.Root[:]...)
	sigField := make([]byte, sign.SignatureSize)
	copy(sigField, s.Signature)
	b = append(b, sigField...)
	b = append(b, s.PuzzleKey[:]...)
	b = binary.BigEndian.AppendUint64(b, s.PuzzleSol)
	return b
}

// SignedMessage returns the byte string the base station signs: it binds the
// code version, page count and Merkle root so none can be swapped
// independently.
func (s *Sig) SignedMessage() []byte {
	b := make([]byte, 0, 3+hashx.Size)
	b = binary.BigEndian.AppendUint16(b, s.Version)
	b = append(b, s.Pages)
	b = append(b, s.Root[:]...)
	return b
}

// PuzzleMessage returns the byte string the puzzle covers (message-specific:
// it includes the signature itself, so a forged signature needs a fresh
// brute-force search).
func (s *Sig) PuzzleMessage() []byte {
	b := s.SignedMessage()
	b = append(b, s.Signature...)
	return b
}

// appendHeader appends the common app-layer prefix into b. Each Marshal owns
// its buffer with an explicit capacity equal to the wire size, so no append
// below ever reallocates — a property the alloc-hotpath lint checks against
// the visible make.
func appendHeader(b []byte, t Type, src NodeID, version uint16) []byte {
	b = append(b, byte(t))
	b = binary.BigEndian.AppendUint16(b, uint16(src))
	b = binary.BigEndian.AppendUint16(b, version)
	return b
}

// Unmarshal parses an app-layer wire image produced by Marshal.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < headerSize {
		return nil, ErrTruncated
	}
	t := Type(b[0])
	src := NodeID(binary.BigEndian.Uint16(b[1:3]))
	version := binary.BigEndian.Uint16(b[3:5])
	rest := b[headerSize:]
	switch t {
	case TypeAdv:
		if len(rest) < 2 {
			return nil, ErrTruncated
		}
		return &Adv{Src: src, Version: version, Units: Unit(rest[0]), Total: Unit(rest[1])}, nil
	case TypeSNACK:
		if len(rest) < 5 {
			return nil, ErrTruncated
		}
		dest := NodeID(binary.BigEndian.Uint16(rest[0:2]))
		unit := Unit(rest[2])
		nbits := int(binary.BigEndian.Uint16(rest[3:5]))
		bv, err := BitVectorFromBytes(nbits, rest[5:])
		if err != nil {
			return nil, err
		}
		return &SNACK{Src: src, Dest: dest, Version: version, Unit: unit, Bits: bv}, nil
	case TypeData:
		if len(rest) < 3 {
			return nil, ErrTruncated
		}
		unit := Unit(rest[0])
		index := rest[1]
		nproof := int(rest[2])
		rest = rest[3:]
		if len(rest) < nproof*hashx.Size+2 {
			return nil, ErrTruncated
		}
		proof := make([]hashx.Image, nproof)
		for i := range proof {
			proof[i] = hashx.FromBytes(rest[i*hashx.Size:])
		}
		rest = rest[nproof*hashx.Size:]
		plen := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) != plen {
			return nil, fmt.Errorf("%w: payload declared %d got %d", ErrTruncated, plen, len(rest))
		}
		return &Data{
			Src: src, Version: version, Unit: unit, Index: index,
			Payload: append([]byte(nil), rest...), Proof: proof,
		}, nil
	case TypeSig:
		want := 1 + hashx.Size + sign.SignatureSize + puzzle.KeySize + puzzle.SolutionSize
		if len(rest) != want {
			return nil, ErrTruncated
		}
		s := &Sig{Src: src, Version: version, Pages: rest[0]}
		rest = rest[1:]
		s.Root = hashx.FromBytes(rest)
		rest = rest[hashx.Size:]
		s.Signature = append([]byte(nil), rest[:sign.SignatureSize]...)
		rest = rest[sign.SignatureSize:]
		copy(s.PuzzleKey[:], rest[:puzzle.KeySize])
		rest = rest[puzzle.KeySize:]
		s.PuzzleSol = binary.BigEndian.Uint64(rest)
		return s, nil
	default:
		return nil, fmt.Errorf("packet: unknown type %d", b[0])
	}
}
