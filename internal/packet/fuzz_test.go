package packet

import (
	"bytes"
	"reflect"
	"testing"

	"lrseluge/internal/crypt/hashx"
)

// FuzzUnmarshal fuzzes the wire parser with the roundtrip property: any
// input Unmarshal accepts must re-marshal to a canonical image of exactly
// WireSize()-LinkOverhead bytes that parses back to a deeply-equal packet.
// Inputs Unmarshal rejects must error without panicking — the parser sits
// directly on the (adversarial) receive path, so a panic here is a
// remote-crash bug; the verify-before-use pass assumes packets reach
// protocol code only through this function.
//
// The checked-in corpus under testdata/fuzz/FuzzUnmarshal seeds the
// malformed shapes found while building the taint fixtures: truncated
// headers, an oversized proof count, a SNACK bit-length/byte mismatch, a
// payload length mismatch, a short signature body, and an unknown type byte.
func FuzzUnmarshal(f *testing.F) {
	// Valid images of each type, built by the marshaller itself.
	adv := &Adv{Src: 3, Version: 7, Units: 2, Total: 9}
	f.Add(adv.Marshal())
	bits := NewBitVector(11)
	bits.Set(0, true)
	bits.Set(10, true)
	snack := &SNACK{Src: 4, Dest: 1, Version: 7, Unit: 3, Bits: bits}
	f.Add(snack.Marshal())
	data := &Data{
		Src: 2, Version: 7, Unit: 1, Index: 5,
		Payload: []byte("payload-bytes"),
		Proof:   []hashx.Image{hashx.Sum([]byte("a")), hashx.Sum([]byte("b"))},
	}
	f.Add(data.Marshal())
	sig := &Sig{Src: 0, Version: 7, Pages: 4, Root: hashx.Sum([]byte("root"))}
	f.Add(sig.Marshal())

	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Unmarshal(b)
		if err != nil {
			return // rejected without panicking: fine
		}
		w := p.Marshal()
		if got, want := len(w), p.WireSize()-LinkOverhead; got != want {
			t.Fatalf("marshal length %d != WireSize-LinkOverhead %d for %#v", got, want, p)
		}
		p2, err := Unmarshal(w)
		if err != nil {
			t.Fatalf("canonical re-marshal does not parse: %v (image %x)", err, w)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("roundtrip mismatch:\n first: %#v\nsecond: %#v", p, p2)
		}
		// Idempotence: the canonical image re-marshals byte-identically.
		if w2 := p2.Marshal(); !bytes.Equal(w, w2) {
			t.Fatalf("marshal not canonical: %x vs %x", w, w2)
		}
	})
}
