package served

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lrseluge/internal/experiment"
	"lrseluge/internal/runstore"
)

// newTestServer builds a server over a fresh store with an injected runner
// (nil selects the real simulator).
func newTestServer(t *testing.T, dir string, runner func(experiment.Spec) (experiment.AvgResult, error)) *Server {
	t.Helper()
	store, err := runstore.Open(dir, runstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, CodeVersion: "test-v1", Workers: 2, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func fakeRunner(calls *atomic.Int64) func(experiment.Spec) (experiment.AvgResult, error) {
	return func(spec experiment.Spec) (experiment.AvgResult, error) {
		calls.Add(1)
		return experiment.AvgResult{
			Protocol:   experiment.LRSeluge,
			Runs:       spec.Runs,
			Completed:  1,
			DataPkts:   42.5,
			LatencySec: 3.25,
			ImagesOK:   true,
		}, nil
	}
}

func postSpec(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRunsPostMissThenHit is the core cache contract: the first POST
// computes (miss), the second is served from the store (hit), and the two
// bodies are byte-identical — the cache disposition lives only in headers.
func TestRunsPostMissThenHit(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, t.TempDir(), fakeRunner(&calls))
	body := `{"seed": 7, "runs": 2, "image_size": 2048}`

	first := postSpec(t, srv.Handler(), body)
	if first.Code != http.StatusOK {
		t.Fatalf("first POST: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get(cacheHeader); got != "miss" {
		t.Fatalf("first POST cache disposition %q, want miss", got)
	}
	// Same spec, representation changed (field order, defaults spelled out):
	// must hit the same key.
	second := postSpec(t, srv.Handler(), `{"image_size": 2048, "runs": 2, "protocol": "lr-seluge", "seed": 7}`)
	if second.Code != http.StatusOK {
		t.Fatalf("second POST: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("second POST cache disposition %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("hit body differs from miss body:\n%s\n%s", first.Body, second.Body)
	}
	if calls.Load() != 1 {
		t.Fatalf("runner called %d times, want 1", calls.Load())
	}
	if first.Header().Get(keyHeader) == "" || first.Header().Get(keyHeader) != second.Header().Get(keyHeader) {
		t.Fatalf("key headers disagree: %q vs %q", first.Header().Get(keyHeader), second.Header().Get(keyHeader))
	}

	var env RunEnvelope
	if err := json.Unmarshal(first.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Key != first.Header().Get(keyHeader) || env.CodeVersion != "test-v1" {
		t.Fatalf("envelope %+v", env)
	}
	if env.Spec.Protocol != "lr-seluge" || env.Spec.Runs != 2 {
		t.Fatalf("envelope spec not normalized: %+v", env.Spec)
	}
	if env.Result.DataPkts != 42.5 || !env.Result.ImagesOK {
		t.Fatalf("envelope result %+v", env.Result)
	}
}

// TestRunsPostRestartWarm reopens the store under a new server instance —
// the daemon-restart path — and expects a warm hit with no recompute.
func TestRunsPostRestartWarm(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	body := `{"seed": 3, "image_size": 4096}`

	first := postSpec(t, newTestServer(t, dir, fakeRunner(&calls)).Handler(), body)
	if first.Code != http.StatusOK || first.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("cold POST: %d %s", first.Code, first.Header().Get(cacheHeader))
	}

	second := postSpec(t, newTestServer(t, dir, fakeRunner(&calls)).Handler(), body)
	if second.Code != http.StatusOK {
		t.Fatalf("warm POST: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get(cacheHeader); got != "hit" {
		t.Fatalf("restarted server disposition %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("restart changed response bytes")
	}
	if calls.Load() != 1 {
		t.Fatalf("runner called %d times across restart, want 1", calls.Load())
	}
}

// TestRunsPostCoalesces hammers one spec with concurrent POSTs while the
// runner is gated: exactly one compute happens, everyone gets the same body.
func TestRunsPostCoalesces(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	runner := func(spec experiment.Spec) (experiment.AvgResult, error) {
		calls.Add(1)
		<-gate // hold the leader until every follower has piled in
		return experiment.AvgResult{Protocol: experiment.Seluge, Runs: spec.Runs, Completed: 1}, nil
	}
	srv := newTestServer(t, t.TempDir(), runner)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 8
	bodies := make([][]byte, clients)
	dispositions := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
				strings.NewReader(`{"seed": 99, "runs": 3}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
			dispositions[i] = resp.Header.Get(cacheHeader)
		}(i)
	}
	// Wait until the leader is inside the runner, give followers a moment to
	// latch onto the flight, then release.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("runner called %d times under concurrency, want 1", calls.Load())
	}
	var miss, shared int
	for i := 0; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs", i)
		}
		switch dispositions[i] {
		case "miss":
			miss++
		case "coalesced", "hit":
			shared++
		default:
			t.Fatalf("client %d disposition %q", i, dispositions[i])
		}
	}
	if miss != 1 || shared != clients-1 {
		t.Fatalf("dispositions: %d miss, %d shared (want 1, %d)", miss, shared, clients-1)
	}
}

// TestRunsPostRejectsBadSpecs: malformed bodies must 400 without computing
// or caching anything.
func TestRunsPostRejectsBadSpecs(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, t.TempDir(), fakeRunner(&calls))
	for _, body := range []string{
		`{"protcol": "seluge"}`,         // unknown field
		`{"seed": 1}{"seed": 2}`,        // trailing document
		`{"loss_p": 2.0}`,               // invalid value
		`{"protocol": "zigbee"}`,        // unknown protocol
		`not json`,                      // not JSON
		`{"grid": {"rows":0,"cols":4}}`, // bad grid
	} {
		rec := postSpec(t, srv.Handler(), body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: got %d, want 400", body, rec.Code)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("runner called %d times for invalid specs", calls.Load())
	}
	if st := srv.cfg.Store.Stats(); st.Entries != 0 {
		t.Fatalf("invalid specs cached: %+v", st)
	}
}

// TestRunsGetByKey covers the direct-lookup endpoint: 400 on a malformed
// key, 404 when absent, and the exact POST body once stored.
func TestRunsGetByKey(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, t.TempDir(), fakeRunner(&calls))

	if rec := get(t, srv.Handler(), "/v1/runs/not-a-key"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed key: %d", rec.Code)
	}
	absent := fmt.Sprintf("%064x", 0xdead)
	if rec := get(t, srv.Handler(), "/v1/runs/"+absent); rec.Code != http.StatusNotFound {
		t.Fatalf("absent key: %d", rec.Code)
	}

	posted := postSpec(t, srv.Handler(), `{"seed": 11}`)
	key := posted.Header().Get(keyHeader)
	got := get(t, srv.Handler(), "/v1/runs/"+key)
	if got.Code != http.StatusOK {
		t.Fatalf("GET stored key: %d %s", got.Code, got.Body)
	}
	if !bytes.Equal(got.Body.Bytes(), posted.Body.Bytes()) {
		t.Fatal("GET body differs from POST body")
	}
}

// TestSweepsEndpoint runs the quick smoke sweep twice through the real
// simulator: all misses cold, all hits warm, identical per-cell results.
func TestSweepsEndpoint(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)

	cold := get(t, srv.Handler(), "/v1/sweeps/smoke?quick=1&runs=1&seed=1")
	if cold.Code != http.StatusOK {
		t.Fatalf("cold sweep: %d %s", cold.Code, cold.Body)
	}
	var coldResp SweepResponse
	if err := json.Unmarshal(cold.Body.Bytes(), &coldResp); err != nil {
		t.Fatal(err)
	}
	if coldResp.Hits != 0 || coldResp.Misses != len(coldResp.Cells) || len(coldResp.Cells) == 0 {
		t.Fatalf("cold sweep hits=%d misses=%d cells=%d", coldResp.Hits, coldResp.Misses, len(coldResp.Cells))
	}
	for i, c := range coldResp.Cells {
		if c.Cached {
			t.Fatalf("cold cell %d marked cached", i)
		}
		if !c.Result.ImagesOK {
			t.Fatalf("cell %d (%s) image verification failed: %+v", i, c.Name, c.Result)
		}
	}

	warm := get(t, srv.Handler(), "/v1/sweeps/smoke?quick=1&runs=1&seed=1")
	if warm.Code != http.StatusOK {
		t.Fatalf("warm sweep: %d %s", warm.Code, warm.Body)
	}
	var warmResp SweepResponse
	if err := json.Unmarshal(warm.Body.Bytes(), &warmResp); err != nil {
		t.Fatal(err)
	}
	if warmResp.Hits != len(warmResp.Cells) || warmResp.Misses != 0 {
		t.Fatalf("warm sweep hits=%d misses=%d", warmResp.Hits, warmResp.Misses)
	}
	for i := range warmResp.Cells {
		if !warmResp.Cells[i].Cached {
			t.Fatalf("warm cell %d not marked cached", i)
		}
		if warmResp.Cells[i].Result != coldResp.Cells[i].Result {
			t.Fatalf("cell %d result changed warm vs cold:\n%+v\n%+v", i, warmResp.Cells[i].Result, coldResp.Cells[i].Result)
		}
	}

	// Different seed must be a fresh set of cells, not warm hits.
	other := get(t, srv.Handler(), "/v1/sweeps/smoke?quick=1&runs=1&seed=2")
	var otherResp SweepResponse
	if err := json.Unmarshal(other.Body.Bytes(), &otherResp); err != nil {
		t.Fatal(err)
	}
	if otherResp.Hits != 0 {
		t.Fatalf("different seed reused cells: %+v", otherResp)
	}

	if rec := get(t, srv.Handler(), "/v1/sweeps/no-such-sweep"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown sweep: %d", rec.Code)
	}
	if rec := get(t, srv.Handler(), "/v1/sweeps/smoke?runs=banana"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad runs param: %d", rec.Code)
	}
}

// TestHealthzAndNotFound covers the probe and the metered catch-all.
func TestHealthzAndNotFound(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), fakeRunner(new(atomic.Int64)))
	rec := get(t, srv.Handler(), "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok":true`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}
	if rec := get(t, srv.Handler(), "/v2/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("catch-all: %d", rec.Code)
	}
}

// TestMetricsEndpoint drives some traffic and checks both renderings.
func TestMetricsEndpoint(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, t.TempDir(), fakeRunner(&calls))
	postSpec(t, srv.Handler(), `{"seed": 1}`)
	postSpec(t, srv.Handler(), `{"seed": 1}`)
	postSpec(t, srv.Handler(), `{"bogus": 1}`)
	get(t, srv.Handler(), "/healthz")

	rec := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, rec.Body)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.Computes != 1 {
		t.Fatalf("cache counters %+v", snap.Cache)
	}
	ep := snap.Endpoints[epRunsPost]
	if ep.Count != 3 || ep.RequestsByCode["200"] != 2 || ep.RequestsByCode["400"] != 1 {
		t.Fatalf("runs_post endpoint %+v", ep)
	}
	if ep.P99Sec < ep.P50Sec || ep.SumSec < 0 {
		t.Fatalf("histogram quantiles %+v", ep)
	}
	if snap.Store.Entries != 1 || snap.Store.Puts != 1 {
		t.Fatalf("store stats %+v", snap.Store)
	}

	prom := get(t, srv.Handler(), "/metrics?format=prometheus")
	text := prom.Body.String()
	for _, line := range []string{
		`lrserved_requests_total{endpoint="runs_post",code="200"} 2`,
		`lrserved_requests_total{endpoint="runs_post",code="400"} 1`,
		`lrserved_request_seconds_count{endpoint="runs_post"} 3`,
		`lrserved_request_seconds_bucket{endpoint="healthz",le="+Inf"} 1`,
		"lrserved_cache_hits_total 1",
		"lrserved_cache_misses_total 1",
		"lrserved_store_entries 1",
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("prometheus output missing %q:\n%s", line, text)
		}
	}
}

// TestRunnerErrorIs500AndNotCached: a failing compute must surface as a 500
// and leave nothing behind, so a later request retries.
func TestRunnerErrorIs500AndNotCached(t *testing.T) {
	fail := true
	runner := func(spec experiment.Spec) (experiment.AvgResult, error) {
		if fail {
			return experiment.AvgResult{}, fmt.Errorf("injected failure")
		}
		return experiment.AvgResult{Completed: 1}, nil
	}
	srv := newTestServer(t, t.TempDir(), runner)
	if rec := postSpec(t, srv.Handler(), `{"seed": 5}`); rec.Code != http.StatusInternalServerError {
		t.Fatalf("failing compute: %d", rec.Code)
	}
	fail = false
	rec := postSpec(t, srv.Handler(), `{"seed": 5}`)
	if rec.Code != http.StatusOK || rec.Header().Get(cacheHeader) != "miss" {
		t.Fatalf("retry after failure: %d %s", rec.Code, rec.Header().Get(cacheHeader))
	}
}

// TestRunsPostRealSimulator exercises the default runner end to end on a
// tiny one-hop spec.
func TestRunsPostRealSimulator(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)
	rec := postSpec(t, srv.Handler(), `{"protocol": "seluge", "image_size": 2048, "receivers": 2, "seed": 1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("real run: %d %s", rec.Code, rec.Body)
	}
	var env RunEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Result.Completed != 1 || !env.Result.ImagesOK {
		t.Fatalf("real run result %+v", env.Result)
	}
	if rec2 := postSpec(t, srv.Handler(), `{"protocol": "seluge", "image_size": 2048, "receivers": 2, "seed": 1}`); rec2.Header().Get(cacheHeader) != "hit" ||
		!bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("real-simulator rerun not served byte-identically from cache")
	}
}

// TestETagConditionalGet pins the conditional-request contract on
// GET /v1/runs/{key}: the first GET carries a strong ETag, a revalidation
// with If-None-Match is answered 304 with no body (and the same ETag), and a
// non-matching validator gets the full body again.
func TestETagConditionalGet(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, t.TempDir(), fakeRunner(&calls))

	posted := postSpec(t, srv.Handler(), `{"seed": 5}`)
	key := posted.Header().Get(keyHeader)

	first := get(t, srv.Handler(), "/v1/runs/"+key)
	etag := first.Header().Get("ETag")
	if first.Code != http.StatusOK || etag == "" {
		t.Fatalf("first GET: code=%d etag=%q", first.Code, etag)
	}
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("ETag %q is not a quoted strong validator", etag)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/runs/"+key, nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation: code=%d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("304 carried a %d-byte body", rec.Body.Len())
	}
	if got := rec.Header().Get("ETag"); got != etag {
		t.Fatalf("304 ETag %q, want %q", got, etag)
	}

	// Weak-comparison and list forms must also revalidate.
	for _, h := range []string{"W/" + etag, `"stale", ` + etag, "*"} {
		req := httptest.NewRequest(http.MethodGet, "/v1/runs/"+key, nil)
		req.Header.Set("If-None-Match", h)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: code=%d, want 304", h, rec.Code)
		}
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/runs/"+key, nil)
	req.Header.Set("If-None-Match", `"something-else"`)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("non-matching validator: code=%d, want 200", rec.Code)
	}
	if !bytes.Equal(rec.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("refetched body differs from the first GET")
	}
}

// TestETagOnSweeps pins the same contract on GET /v1/sweeps/{name}, where
// the warm-path body is deterministic so its ETag revalidates across
// requests.
func TestETagOnSweeps(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)

	warmup := get(t, srv.Handler(), "/v1/sweeps/smoke?quick=1&runs=1&seed=1")
	if warmup.Code != http.StatusOK {
		t.Fatalf("warmup sweep: %d %s", warmup.Code, warmup.Body)
	}
	if warmup.Header().Get("ETag") == "" {
		t.Fatal("sweep response has no ETag")
	}

	// The body carries the hit/miss split, so the cold ETag does not
	// revalidate a warm response; a second (all-hits) request is the stable
	// body whose validator holds from then on.
	warm := get(t, srv.Handler(), "/v1/sweeps/smoke?quick=1&runs=1&seed=1")
	etag := warm.Header().Get("ETag")
	if warm.Code != http.StatusOK || etag == "" {
		t.Fatalf("warm sweep: code=%d etag=%q", warm.Code, etag)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/sweeps/smoke?quick=1&runs=1&seed=1", nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("sweep revalidation: code=%d bodyBytes=%d, want 304 with no body", rec.Code, rec.Body.Len())
	}
}

// TestSweepIndex pins GET /v1/sweeps: every catalog sweep is listed, cold
// stores report zero stored cells, and running a sweep flips exactly that
// sweep to warm.
func TestSweepIndex(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), nil)

	cold := get(t, srv.Handler(), "/v1/sweeps?quick=1&runs=1&seed=1")
	if cold.Code != http.StatusOK {
		t.Fatalf("cold index: %d %s", cold.Code, cold.Body)
	}
	var coldResp SweepIndexResponse
	if err := json.Unmarshal(cold.Body.Bytes(), &coldResp); err != nil {
		t.Fatal(err)
	}
	if len(coldResp.Sweeps) != len(experiment.SweepNames()) {
		t.Fatalf("index lists %d sweeps, want %d", len(coldResp.Sweeps), len(experiment.SweepNames()))
	}
	for _, e := range coldResp.Sweeps {
		if e.Stored != 0 || e.Warm {
			t.Fatalf("cold store reports sweep %q stored=%d warm=%v", e.Sweep, e.Stored, e.Warm)
		}
		if e.Cells == 0 {
			t.Fatalf("sweep %q expanded to zero cells", e.Sweep)
		}
	}

	if rec := get(t, srv.Handler(), "/v1/sweeps/smoke?quick=1&runs=1&seed=1"); rec.Code != http.StatusOK {
		t.Fatalf("smoke sweep: %d %s", rec.Code, rec.Body)
	}

	warm := get(t, srv.Handler(), "/v1/sweeps?quick=1&runs=1&seed=1")
	var warmResp SweepIndexResponse
	if err := json.Unmarshal(warm.Body.Bytes(), &warmResp); err != nil {
		t.Fatal(err)
	}
	for _, e := range warmResp.Sweeps {
		if e.Sweep == "smoke" {
			if !e.Warm || e.Stored != e.Cells {
				t.Fatalf("smoke not warm after running it: %+v", e)
			}
		} else if e.Stored != 0 {
			t.Fatalf("running smoke stored cells for %q: %+v", e.Sweep, e)
		}
	}

	// The spec is part of the cell key: a different seed is cold again.
	other := get(t, srv.Handler(), "/v1/sweeps?quick=1&runs=1&seed=9")
	var otherResp SweepIndexResponse
	if err := json.Unmarshal(other.Body.Bytes(), &otherResp); err != nil {
		t.Fatal(err)
	}
	for _, e := range otherResp.Sweeps {
		if e.Stored != 0 {
			t.Fatalf("different seed reports warmth: %+v", e)
		}
	}

	if rec := get(t, srv.Handler(), "/v1/sweeps?runs=banana"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad runs param on index: %d", rec.Code)
	}
}
