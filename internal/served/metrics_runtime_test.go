package served

import (
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMetricsRuntimeGauges verifies the Prometheus exposition carries the
// process runtime block (heap, GC, goroutines) and that the block is
// strictly appended: every pre-existing series renders before the first
// runtime series, so scrapers of the original exposition see identical
// bytes for those series.
func TestMetricsRuntimeGauges(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, t.TempDir(), fakeRunner(&calls))
	postSpec(t, srv.Handler(), `{"seed": 1}`)
	get(t, srv.Handler(), "/healthz")

	text := get(t, srv.Handler(), "/metrics?format=prometheus").Body.String()
	for _, line := range []string{
		"# TYPE lrserved_runtime_total_alloc_bytes counter",
		"# TYPE lrserved_runtime_gc_cycles_total counter",
		"# TYPE lrserved_runtime_gc_pause_ns_total counter",
		"# TYPE lrserved_runtime_heap_bytes gauge",
		"# TYPE lrserved_runtime_goroutines gauge",
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}

	// A live process always has a non-empty heap and at least one goroutine.
	for _, name := range []string{"lrserved_runtime_heap_bytes", "lrserved_runtime_goroutines"} {
		if v := promValue(t, text, name); v <= 0 {
			t.Errorf("%s = %d, want > 0", name, v)
		}
	}

	// Append-only: the original exposition is an unmodified prefix — every
	// pre-existing series (lrserved_store_max_bytes renders last) appears
	// before the first runtime series.
	idx := strings.Index(text, "lrserved_runtime_")
	if idx < 0 {
		t.Fatal("no runtime series")
	}
	prefix := text[:idx]
	if !strings.Contains(prefix, "lrserved_store_max_bytes") {
		t.Errorf("runtime block not appended after the existing series:\n%s", text)
	}
}

// promValue extracts the integer sample value of an unlabeled series.
func promValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", name, rest)
		}
		return v
	}
	t.Fatalf("series %s not found:\n%s", name, text)
	return 0
}
