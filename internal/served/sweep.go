package served

import (
	"fmt"

	"lrseluge/internal/experiment"
	"lrseluge/internal/harness"
	"lrseluge/internal/runstore"
)

// CellOutcome is one sweep cell's result plus its cache provenance. The
// Cached flag is the only field that differs between a cold and a warm pass
// over the same sweep; callers that need byte-identical output across passes
// (lrsweep -store) must strip it before serializing.
type CellOutcome struct {
	Sweep  string               `json:"sweep"`
	Index  int                  `json:"index"`
	Name   string               `json:"name"`
	Proto  string               `json:"proto"`
	Params []harness.Param      `json:"params,omitempty"`
	Key    string               `json:"key"`
	Cached bool                 `json:"cached"`
	Runs   int                  `json:"runs"`
	Result experiment.AvgResult `json:"result"`
}

// cellEnvelope is the stored value of one sweep cell. The descriptive fields
// make a store directory self-explaining (lrtrace or a human can read what a
// key holds); only Result is served back.
type cellEnvelope struct {
	Key         string               `json:"key"`
	CodeVersion string               `json:"code_version"`
	Sweep       string               `json:"sweep"`
	Index       int                  `json:"index"`
	Entry       string               `json:"entry"`
	Result      experiment.AvgResult `json:"result"`
}

// RunSweepCells resolves every cell against the store and computes only the
// misses — the incremental-sweep core shared by the daemon's GET /v1/sweeps
// handler and lrsweep's -store mode. Missing cells are batched into a single
// experiment.RunGrid call so they parallelize across cfg.Workers exactly as
// a from-scratch sweep would; each computed result is stored before
// returning. A nil store degrades to computing everything.
//
// Outcomes are returned in cell order. hits+misses == len(cells).
func RunSweepCells(store *runstore.Store, cells []experiment.Cell, codeVersion string, cfg harness.Config) (outs []CellOutcome, hits, misses int, err error) {
	outs = make([]CellOutcome, len(cells))
	var missing []int
	for i, c := range cells {
		key := c.Key(codeVersion)
		outs[i] = CellOutcome{
			Sweep:  c.Sweep,
			Index:  c.Index,
			Name:   c.Entry.Name,
			Proto:  c.Entry.Scenario.Protocol.String(),
			Params: c.Entry.Params,
			Key:    key,
			Runs:   c.Entry.Runs,
		}
		if store != nil {
			var env cellEnvelope
			if ok, err := store.Get(key, &env); err != nil {
				return nil, 0, 0, err
			} else if ok {
				outs[i].Cached = true
				outs[i].Result = env.Result
				hits++
				continue
			}
		}
		missing = append(missing, i)
	}
	if len(missing) == 0 {
		return outs, hits, 0, nil
	}

	entries := make([]experiment.GridEntry, len(missing))
	for j, i := range missing {
		entries[j] = cells[i].Entry
	}
	results, err := experiment.RunGrid(cells[missing[0]].Sweep, entries, cfg)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("served: sweep compute: %w", err)
	}
	for j, i := range missing {
		outs[i].Result = results[j]
		misses++
		if store != nil {
			env := cellEnvelope{
				Key:         outs[i].Key,
				CodeVersion: codeVersion,
				Sweep:       outs[i].Sweep,
				Index:       outs[i].Index,
				Entry:       outs[i].Name,
				Result:      results[j],
			}
			if err := store.Put(outs[i].Key, env); err != nil {
				return nil, 0, 0, err
			}
		}
	}
	return outs, hits, misses, nil
}

// RunSweep expands a named catalog sweep and runs it incrementally against
// the store. This is the one-call form used by lrsweep -store.
func RunSweep(store *runstore.Store, name string, spec experiment.SweepSpec, codeVersion string, cfg harness.Config) ([]CellOutcome, int, int, error) {
	cells, err := experiment.SweepCells(name, spec)
	if err != nil {
		return nil, 0, 0, err
	}
	return RunSweepCells(store, cells, codeVersion, cfg)
}
