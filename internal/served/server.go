// Package served is the lrserved result-serving daemon: a stdlib-only HTTP
// server in front of a content-addressed runstore. The simulator is
// deterministic, so a run key — SHA-256 of the canonical scenario spec plus
// the code version (experiment.Spec.Key) — fully identifies its averaged
// result, and the daemon's economics follow: compute a cell once, serve it
// from the store forever.
//
// Endpoints:
//
//	POST /v1/runs          run (or serve) the spec in the request body
//	GET  /v1/runs/{key}    fetch a stored result by its content key
//	GET  /v1/sweeps        index the catalog sweeps and their store warmth
//	GET  /v1/sweeps/{name} run a catalog sweep incrementally, per-cell cached
//	GET  /healthz          liveness probe
//	GET  /metrics          counters + latency histograms (JSON or Prometheus)
//
// Concurrent POSTs of the same spec are deduplicated through an in-flight
// table (singleflight): the first request computes, the rest block on its
// completion and share the result. Responses carry the cache disposition in
// the X-Lrserved-Cache header — never in the body, so a miss and the hits
// that follow it return byte-identical bodies.
//
// GET responses on /v1/runs/{key} and /v1/sweeps/{name} carry a strong ETag
// derived from the body bytes; a request whose If-None-Match matches is
// answered 304 Not Modified with no body. Bodies are pure functions of
// stored content, so the ETag is stable across restarts and replicas.
//
// The package deliberately stops at http.Handler; listening, graceful
// shutdown and flag parsing live in cmd/lrserved.
package served

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"lrseluge/internal/experiment"
	"lrseluge/internal/harness"
	"lrseluge/internal/runstore"
)

// cacheHeader reports how a response body was obtained: "hit" (served from
// the store), "miss" (computed by this request), or "coalesced" (another
// in-flight request computed it and this one shared the result).
const cacheHeader = "X-Lrserved-Cache"

// keyHeader carries the content-addressed run key of the response.
const keyHeader = "X-Lrserved-Key"

// maxSpecBytes bounds POST /v1/runs request bodies; canonical specs are a
// few hundred bytes, so 1 MiB is generous without inviting abuse.
const maxSpecBytes = 1 << 20

// Config assembles a Server.
type Config struct {
	// Store is the backing result store (required).
	Store *runstore.Store
	// CodeVersion stamps every derived key; it must change whenever the
	// simulator's observable behavior does (default "dev").
	CodeVersion string
	// Workers is the compute pool width per request; <= 0 means GOMAXPROCS.
	Workers int
	// Runner computes a normalized spec's averaged result. Nil selects the
	// real simulator (experiment.RunAvgParallel); tests inject counters and
	// failures here.
	Runner func(experiment.Spec) (experiment.AvgResult, error)
}

// RunEnvelope is the response body of POST /v1/runs and GET /v1/runs/{key},
// and the stored value under a run key: the key itself, the code version
// that computed it, the fully-normalized spec, and the averaged result.
type RunEnvelope struct {
	Key         string               `json:"key"`
	CodeVersion string               `json:"code_version"`
	Spec        experiment.Spec      `json:"spec"`
	Result      experiment.AvgResult `json:"result"`
}

// flight is one in-progress computation other requests can latch onto.
// env/err are written exactly once, before done is closed.
type flight struct {
	done chan struct{}
	env  RunEnvelope
	err  error
}

// Server is the lrserved HTTP surface. Create with New, mount via Handler.
type Server struct {
	cfg     Config
	metrics *Metrics
	handler http.Handler

	mu       sync.Mutex
	inflight map[string]*flight
}

// New validates cfg and builds the route table.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("served: Config.Store is required")
	}
	if cfg.CodeVersion == "" {
		cfg.CodeVersion = "dev"
	}
	if cfg.Runner == nil {
		workers := cfg.Workers
		cfg.Runner = func(spec experiment.Spec) (experiment.AvgResult, error) {
			sc, err := spec.Scenario()
			if err != nil {
				return experiment.AvgResult{}, err
			}
			runs := spec.Runs
			if runs < 1 {
				runs = 1
			}
			return experiment.RunAvgParallel(sc, runs, workers)
		}
	}
	s := &Server{
		cfg:      cfg,
		metrics:  newMetrics(),
		inflight: make(map[string]*flight),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.instrument(epRunsPost, s.handleRunsPost))
	mux.HandleFunc("GET /v1/runs/{key}", s.instrument(epRunsGet, s.handleRunsGet))
	mux.HandleFunc("GET /v1/sweeps", s.instrument(epSweeps, s.handleSweepIndex))
	mux.HandleFunc("GET /v1/sweeps/{name}", s.instrument(epSweeps, s.handleSweeps))
	mux.HandleFunc("GET /healthz", s.instrument(epHealthz, s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	mux.HandleFunc("/", s.instrument(epOther, s.handleNotFound))
	s.handler = mux
	return s, nil
}

// Handler returns the mounted route table.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns a snapshot of the server's meters merged with store stats.
func (s *Server) Metrics() Snapshot {
	return s.metrics.snapshot(s.cfg.Store.Stats())
}

// statusWriter records the status code a handler committed to.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with in-flight tracking, status capture and
// latency observation under the endpoint's label.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.begin()
		//lrlint:ignore effect-purity request latency is a wall-clock observable by definition; run results never depend on it (virtual time stays inside internal/sim)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		//lrlint:ignore effect-purity request latency is a wall-clock observable by definition; run results never depend on it (virtual time stays inside internal/sim)
		s.metrics.end(endpoint, sw.code, time.Since(start).Seconds())
	}
}

// handleRunsPost serves POST /v1/runs: decode and normalize the spec, derive
// its key, serve from the store on a hit, otherwise compute through the
// singleflight table and store the result.
func (s *Server) handleRunsPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	spec, err := experiment.DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := norm.Key(s.cfg.CodeVersion)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	var env RunEnvelope
	ok, err := s.cfg.Store.Get(key, &env)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if ok {
		s.metrics.cacheHit()
		writeEnvelope(w, env, "hit")
		return
	}

	env, disposition, err := s.compute(key, norm)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeEnvelope(w, env, disposition)
}

// compute resolves a key through the singleflight table: the first caller
// becomes the leader and computes; latecomers block on the leader's flight
// and share its outcome.
func (s *Server) compute(key string, norm experiment.Spec) (RunEnvelope, string, error) {
	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-f.done
		s.metrics.cacheCoalesced()
		return f.env, "coalesced", f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(f.done)
	}()

	// Double-check the store: a previous leader may have completed between
	// this request's miss and its registration above.
	var env RunEnvelope
	if ok, err := s.cfg.Store.Get(key, &env); err == nil && ok {
		s.metrics.cacheHit()
		f.env = env
		return env, "hit", nil
	}

	s.metrics.cacheMiss()
	res, err := s.cfg.Runner(norm)
	if err != nil {
		f.err = fmt.Errorf("served: compute %s: %w", key, err)
		return RunEnvelope{}, "", f.err
	}
	env = RunEnvelope{Key: key, CodeVersion: s.cfg.CodeVersion, Spec: norm, Result: res}
	if err := s.cfg.Store.Put(key, env); err != nil {
		f.err = err
		return RunEnvelope{}, "", err
	}
	s.metrics.computeDone()
	f.env = env
	return env, "miss", nil
}

// handleRunsGet serves GET /v1/runs/{key}: a pure store lookup, no compute.
func (s *Server) handleRunsGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var env RunEnvelope
	ok, err := s.cfg.Store.Get(key, &env)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no result stored under %s", key))
		return
	}
	w.Header().Set(cacheHeader, "hit")
	w.Header().Set(keyHeader, env.Key)
	writeJSONCacheable(w, r, env)
}

// SweepResponse is the body of GET /v1/sweeps/{name}.
type SweepResponse struct {
	Sweep       string        `json:"sweep"`
	CodeVersion string        `json:"code_version"`
	Runs        int           `json:"runs"`
	Seed        int64         `json:"seed"`
	Quick       bool          `json:"quick"`
	Hits        int           `json:"hits"`
	Misses      int           `json:"misses"`
	Cells       []CellOutcome `json:"cells"`
}

// parseSweepSpec reads the shared ?runs=&seed=&quick= query parameters. A
// false return means the error response has already been written.
func parseSweepSpec(w http.ResponseWriter, r *http.Request) (experiment.SweepSpec, bool) {
	spec := experiment.SweepSpec{Runs: 1, Seed: 1}
	q := r.URL.Query()
	if v := q.Get("runs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("runs: %v", err))
			return spec, false
		}
		spec.Runs = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("seed: %v", err))
			return spec, false
		}
		spec.Seed = n
	}
	if v := q.Get("quick"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("quick: %v", err))
			return spec, false
		}
		spec.Quick = b
	}
	return spec, true
}

// handleSweeps serves GET /v1/sweeps/{name}?runs=&seed=&quick=: the catalog
// sweep runs incrementally, consulting the store per cell and computing only
// the misses.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	spec, ok := parseSweepSpec(w, r)
	if !ok {
		return
	}

	cells, err := experiment.SweepCells(name, spec)
	if err != nil {
		// The catalog is fixed, so an unknown name (or invalid dims) is a
		// client error, not a server fault.
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	outs, hits, misses, err := RunSweepCells(s.cfg.Store, cells, s.cfg.CodeVersion, harness.Config{Workers: s.cfg.Workers})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.addCache(int64(hits), int64(misses), int64(misses))
	writeJSONCacheable(w, r, SweepResponse{
		Sweep:       name,
		CodeVersion: s.cfg.CodeVersion,
		Runs:        spec.Runs,
		Seed:        spec.Seed,
		Quick:       spec.Quick,
		Hits:        hits,
		Misses:      misses,
		Cells:       outs,
	})
}

// SweepIndexEntry summarizes one catalog sweep's store warmth under the
// current code version.
type SweepIndexEntry struct {
	Sweep  string `json:"sweep"`
	Cells  int    `json:"cells"`
	Stored int    `json:"stored"`
	Warm   bool   `json:"warm"`
}

// SweepIndexResponse is the body of GET /v1/sweeps.
type SweepIndexResponse struct {
	CodeVersion string            `json:"code_version"`
	Runs        int               `json:"runs"`
	Seed        int64             `json:"seed"`
	Quick       bool              `json:"quick"`
	Sweeps      []SweepIndexEntry `json:"sweeps"`
}

// handleSweepIndex serves GET /v1/sweeps?runs=&seed=&quick=: for every
// catalog sweep, how many of its cells the store already holds under the
// given spec, and whether the sweep is fully warm (a hit-only GET away). A
// pure store probe — nothing is computed.
func (s *Server) handleSweepIndex(w http.ResponseWriter, r *http.Request) {
	spec, ok := parseSweepSpec(w, r)
	if !ok {
		return
	}
	names := experiment.SweepNames()
	entries := make([]SweepIndexEntry, 0, len(names))
	for _, name := range names {
		cells, err := experiment.SweepCells(name, spec)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("expand %s: %v", name, err))
			return
		}
		stored := 0
		for _, c := range cells {
			if s.cfg.Store.Has(c.Key(s.cfg.CodeVersion)) {
				stored++
			}
		}
		entries = append(entries, SweepIndexEntry{
			Sweep:  name,
			Cells:  len(cells),
			Stored: stored,
			Warm:   len(cells) > 0 && stored == len(cells),
		})
	}
	writeJSON(w, http.StatusOK, SweepIndexResponse{
		CodeVersion: s.cfg.CodeVersion,
		Runs:        spec.Runs,
		Seed:        spec.Seed,
		Quick:       spec.Quick,
		Sweeps:      entries,
	})
}

// handleHealthz serves the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":           true,
		"code_version": s.cfg.CodeVersion,
	})
}

// handleMetrics serves the meters as JSON by default, or in the Prometheus
// text exposition format when ?format=prometheus or the Accept header asks
// for text/plain.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	wantProm := r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain")
	if wantProm {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.WriteHeader(http.StatusOK)
		s.metrics.writeProm(w, s.cfg.Store.Stats())
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cfg.Store.Stats()))
}

// handleNotFound is the metered catch-all for unrouted paths.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path))
}

// writeEnvelope writes a result envelope with its cache disposition in the
// headers. The body is a pure function of the envelope, so hit, miss and
// coalesced responses for one key are byte-identical.
func writeEnvelope(w http.ResponseWriter, env RunEnvelope, disposition string) {
	w.Header().Set(cacheHeader, disposition)
	w.Header().Set(keyHeader, env.Key)
	writeJSON(w, http.StatusOK, env)
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// etagOf derives the strong validator for a response body: a quoted
// truncated SHA-256 of the exact bytes on the wire.
func etagOf(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// list of entity tags, `*` matching anything, with the weak-comparison rule
// (a W/ prefix is ignored — weak comparison is all If-None-Match gets per
// RFC 9110 §13.1.2).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" || strings.TrimPrefix(c, "W/") == etag {
			return true
		}
	}
	return false
}

// writeJSONCacheable is writeJSON plus conditional-request support: the
// response carries a strong body-derived ETag, and a request whose
// If-None-Match matches is answered 304 Not Modified with no body (the ETag
// and any cache headers already set still go out, per RFC 9110 §15.4.5).
func writeJSONCacheable(w http.ResponseWriter, r *http.Request, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	buf = append(buf, '\n')
	etag := etagOf(buf)
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

// writeJSON marshals v and commits the response. Marshaling before
// WriteHeader means an encoding failure still yields a well-formed 500
// instead of a half-written 200.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(buf, '\n'))
}
