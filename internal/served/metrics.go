package served

import (
	"fmt"
	"io"
	"strconv"
	"sync"

	"lrseluge/internal/detmap"
	"lrseluge/internal/obs"
	"lrseluge/internal/runstore"
)

// Endpoint labels, in render order. Fixed slices (not maps) keep both the
// JSON and Prometheus renderings deterministic without sorting at render
// time.
const (
	epRunsPost = "runs_post"
	epRunsGet  = "runs_get"
	epSweeps   = "sweeps"
	epHealthz  = "healthz"
	epMetrics  = "metrics"
	epOther    = "other"
)

var endpointOrder = []string{epRunsPost, epRunsGet, epSweeps, epHealthz, epMetrics, epOther}

// latencyBuckets are the histogram upper bounds in seconds (+Inf implied).
// The low end resolves the cache-hit path (sub-millisecond file reads), the
// high end covers cold multi-minute sweep computes.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts []int64 // counts[i] = observations in bucket i; last slot = +Inf
	sum    float64
	total  int64
}

func newHistogram() histogram {
	return histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(sec float64) {
	idx := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if sec <= ub {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += sec
	h.total++
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the winning bucket, the standard Prometheus histogram estimate.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum int64
	lower := 0.0
	for i, c := range h.counts {
		if c == 0 {
			if i < len(latencyBuckets) {
				lower = latencyBuckets[i]
			}
			continue
		}
		if float64(cum+c) >= rank {
			upper := lower
			if i < len(latencyBuckets) {
				upper = latencyBuckets[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (upper-lower)*frac
		}
		cum += c
		if i < len(latencyBuckets) {
			lower = latencyBuckets[i]
		}
	}
	return lower
}

// endpointStats meters one endpoint: request counts by status code plus the
// latency histogram.
type endpointStats struct {
	byCode map[int]int64
	lat    histogram
}

// Metrics is the server's request-level instrumentation. All methods are
// safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	inflight  int64
	hits      int64
	misses    int64
	coalesced int64
	computes  int64
}

func newMetrics() *Metrics {
	m := &Metrics{endpoints: make(map[string]*endpointStats, len(endpointOrder))}
	for _, ep := range endpointOrder {
		m.endpoints[ep] = &endpointStats{byCode: make(map[int]int64), lat: newHistogram()}
	}
	return m
}

// begin/end bracket one in-flight request.
func (m *Metrics) begin() {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
}

func (m *Metrics) end(endpoint string, code int, sec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight--
	ep := m.endpoints[endpoint]
	if ep == nil {
		ep = m.endpoints[epOther]
	}
	ep.byCode[code]++
	ep.lat.observe(sec)
}

// cacheHit/cacheMiss/cacheCoalesced/computeDone count run-cache outcomes.
func (m *Metrics) cacheHit() { m.mu.Lock(); m.hits++; m.mu.Unlock() }

func (m *Metrics) cacheMiss() { m.mu.Lock(); m.misses++; m.mu.Unlock() }

func (m *Metrics) cacheCoalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }

func (m *Metrics) computeDone() { m.mu.Lock(); m.computes++; m.mu.Unlock() }

// addCache folds a batch of cache outcomes in at once (the sweep handler
// resolves many cells per request).
func (m *Metrics) addCache(hits, misses, computes int64) {
	m.mu.Lock()
	m.hits += hits
	m.misses += misses
	m.computes += computes
	m.mu.Unlock()
}

// EndpointSnapshot is the JSON rendering of one endpoint's meters.
type EndpointSnapshot struct {
	RequestsByCode map[string]int64 `json:"requests_by_code"`
	Count          int64            `json:"count"`
	SumSec         float64          `json:"sum_sec"`
	P50Sec         float64          `json:"p50_sec"`
	P99Sec         float64          `json:"p99_sec"`
}

// Snapshot is the JSON rendering of /metrics.
type Snapshot struct {
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	Cache     CacheSnapshot               `json:"cache"`
	Store     runstore.Stats              `json:"store"`
}

// CacheSnapshot summarizes run-cache traffic.
type CacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Computes  int64 `json:"computes"`
	Inflight  int64 `json:"inflight"`
}

// snapshot captures the meters under the lock; store stats are merged in by
// the caller (the store has its own lock).
func (m *Metrics) snapshot(store runstore.Stats) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Snapshot{
		Endpoints: make(map[string]EndpointSnapshot, len(endpointOrder)),
		Cache: CacheSnapshot{
			Hits: m.hits, Misses: m.misses, Coalesced: m.coalesced,
			Computes: m.computes, Inflight: m.inflight,
		},
		Store: store,
	}
	for _, name := range endpointOrder {
		ep := m.endpoints[name]
		snap := EndpointSnapshot{
			RequestsByCode: make(map[string]int64, len(ep.byCode)),
			Count:          ep.lat.total,
			SumSec:         ep.lat.sum,
			P50Sec:         ep.lat.quantile(0.5),
			P99Sec:         ep.lat.quantile(0.99),
		}
		for _, code := range detmap.SortedKeys(ep.byCode) {
			snap.RequestsByCode[strconv.Itoa(code)] = ep.byCode[code]
		}
		out.Endpoints[name] = snap
	}
	return out
}

// writeProm renders the meters in the Prometheus text exposition format.
func (m *Metrics) writeProm(w io.Writer, store runstore.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE lrserved_requests_total counter\n")
	for _, name := range endpointOrder {
		ep := m.endpoints[name]
		for _, code := range detmap.SortedKeys(ep.byCode) {
			fmt.Fprintf(w, "lrserved_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, code, ep.byCode[code])
		}
	}

	fmt.Fprintf(w, "# TYPE lrserved_request_seconds histogram\n")
	for _, name := range endpointOrder {
		ep := m.endpoints[name]
		if ep.lat.total == 0 {
			continue
		}
		var cum int64
		for i, ub := range latencyBuckets {
			cum += ep.lat.counts[i]
			fmt.Fprintf(w, "lrserved_request_seconds_bucket{endpoint=%q,le=%q} %d\n", name, promFloat(ub), cum)
		}
		cum += ep.lat.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "lrserved_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "lrserved_request_seconds_sum{endpoint=%q} %s\n", name, promFloat(ep.lat.sum))
		fmt.Fprintf(w, "lrserved_request_seconds_count{endpoint=%q} %d\n", name, ep.lat.total)
	}

	counters := []struct {
		name string
		val  int64
	}{
		{"lrserved_cache_hits_total", m.hits},
		{"lrserved_cache_misses_total", m.misses},
		{"lrserved_cache_coalesced_total", m.coalesced},
		{"lrserved_runs_computed_total", m.computes},
		{"lrserved_store_puts_total", store.Puts},
		{"lrserved_store_evictions_total", store.Evictions},
		{"lrserved_store_corrupt_total", store.Corrupt},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.val)
	}
	gauges := []struct {
		name string
		val  int64
	}{
		{"lrserved_inflight_requests", m.inflight},
		{"lrserved_store_entries", int64(store.Entries)},
		{"lrserved_store_bytes", store.Bytes},
		{"lrserved_store_max_bytes", store.MaxBytes},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.val)
	}

	// Process-level runtime health (heap, GC, goroutines), appended last so
	// every series above keeps its exact bytes and order.
	obs.ReadRuntime().WriteProm(w, "lrserved")
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
