package seluge

import (
	"bytes"
	"testing"

	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
)

func testParams() image.Params {
	return image.Params{PacketPayload: 24, K: 4, N: 4}
}

type fixture struct {
	obj    *Object
	data   []byte
	key    *sign.KeyPair
	chain  *puzzle.Chain
	pp     puzzle.Params
	col    *metrics.Collector
	sigCtx func() *dissem.SigContext
}

func newFixture(t *testing.T, size int) *fixture {
	t.Helper()
	key, err := sign.GenerateDeterministic(5)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := puzzle.NewChain([]byte("test"), 4)
	if err != nil {
		t.Fatal(err)
	}
	pp := puzzle.Params{Strength: 4}
	data := image.Random(size, 2)
	obj, err := Build(BuildInput{Version: 1, Image: data, Params: testParams(), Key: key, Chain: chain, Puzzle: pp})
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.New()
	f := &fixture{obj: obj, data: data, key: key, chain: chain, pp: pp, col: col}
	f.sigCtx = func() *dissem.SigContext {
		return &dissem.SigContext{Pub: key.Public(), Commitment: chain.Commitment(), Puzzle: pp, Col: col}
	}
	return f
}

func (f *fixture) receiver(t *testing.T) *Handler {
	t.Helper()
	h, err := NewHandler(1, testParams(), f.sigCtx())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// deliver pushes the signature and then every packet of every unit from a
// preloaded source into dst, asserting completion.
func deliver(t *testing.T, f *fixture, dst *Handler) {
	t.Helper()
	src := Preload(f.obj, f.sigCtx())
	sig := src.SigPacket(0)
	if !dst.PreVerifySig(sig) {
		t.Fatal("genuine signature failed weak check")
	}
	if res := dst.IngestSig(sig); res != dissem.UnitComplete {
		t.Fatalf("sig ingest: %v", res)
	}
	for dst.CompleteUnits() < dst.TotalUnits() {
		u := dst.CompleteUnits()
		npkts := dst.PacketsInUnit(u)
		before := dst.CompleteUnits()
		for idx := 0; idx < npkts; idx++ {
			pkts, err := src.Packets(u, []int{idx}, 0)
			if err != nil {
				t.Fatal(err)
			}
			res := dst.Ingest(pkts[0])
			if res == dissem.Rejected {
				t.Fatalf("unit %d idx %d rejected", u, idx)
			}
		}
		if dst.CompleteUnits() != before+1 {
			t.Fatalf("unit %d did not complete", u)
		}
	}
}

func TestBuildStructure(t *testing.T) {
	f := newFixture(t, 200)
	// Page bytes = 4*(24-8) = 64 -> 4 pages; units = 6.
	if f.obj.NumPages() != 4 || f.obj.TotalUnits() != 6 {
		t.Fatalf("pages=%d units=%d", f.obj.NumPages(), f.obj.TotalUnits())
	}
	if f.obj.ImageSize() != 200 {
		t.Fatal("image size wrong")
	}
	if f.obj.M0Packets() < 1 {
		t.Fatal("no hash-page packets")
	}
}

func TestEndToEndAuthenticatedTransfer(t *testing.T) {
	f := newFixture(t, 200)
	dst := f.receiver(t)
	deliver(t, f, dst)
	got, err := dst.ReassembledImage(len(f.data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f.data) {
		t.Fatal("image mismatch after authenticated transfer")
	}
}

func TestReceiverCanServeAfterDecoding(t *testing.T) {
	f := newFixture(t, 200)
	mid := f.receiver(t)
	deliver(t, f, mid)
	// A second receiver fed entirely from the first one must also verify.
	dst := f.receiver(t)
	sig := mid.SigPacket(7)
	if !dst.PreVerifySig(sig) || dst.IngestSig(sig) != dissem.UnitComplete {
		t.Fatal("relayed signature rejected")
	}
	for dst.CompleteUnits() < dst.TotalUnits() {
		u := dst.CompleteUnits()
		for idx := 0; idx < dst.PacketsInUnit(u); idx++ {
			pkts, err := mid.Packets(u, []int{idx}, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res := dst.Ingest(pkts[0]); res == dissem.Rejected {
				t.Fatalf("relayed packet unit %d idx %d rejected", u, idx)
			}
		}
	}
	got, err := dst.ReassembledImage(len(f.data))
	if err != nil || !bytes.Equal(got, f.data) {
		t.Fatalf("relayed image mismatch: %v", err)
	}
}

func TestForgedSignatureRejected(t *testing.T) {
	f := newFixture(t, 200)
	dst := f.receiver(t)
	src := Preload(f.obj, f.sigCtx())
	sig := src.SigPacket(0)

	// Garbage puzzle: must die at the weak check without a verification.
	forged := *sig
	forged.PuzzleSol++
	if dst.PreVerifySig(&forged) {
		t.Fatal("bad puzzle passed weak check")
	}
	if f.col.PuzzleRejects() == 0 {
		t.Fatal("puzzle reject not counted")
	}

	// Valid puzzle but wrong signature bytes: attacker brute-forced the
	// puzzle; the full verification must reject.
	forged2 := *sig
	forged2.Signature = append([]byte(nil), sig.Signature...)
	forged2.Signature[10] ^= 1
	key, _ := f.chain.Key(1)
	sol, err := puzzle.Solve(f.pp, forged2.PuzzleMessage(), key)
	if err != nil {
		t.Fatal(err)
	}
	forged2.PuzzleKey = key
	forged2.PuzzleSol = sol
	if !dst.PreVerifySig(&forged2) {
		t.Fatal("solved puzzle should pass weak check")
	}
	if res := dst.IngestSig(&forged2); res != dissem.Rejected {
		t.Fatalf("forged signature ingest: %v", res)
	}
}

func TestForgedDataRejectedImmediately(t *testing.T) {
	f := newFixture(t, 200)
	dst := f.receiver(t)
	src := Preload(f.obj, f.sigCtx())
	sig := src.SigPacket(0)
	dst.PreVerifySig(sig)
	dst.IngestSig(sig)

	// Forged M0 packet: wrong payload with a stale proof.
	genuine, _ := src.Packets(1, []int{0}, 0)
	forged := *genuine[0]
	forged.Payload = append([]byte(nil), genuine[0].Payload...)
	forged.Payload[0] ^= 1
	if res := dst.Ingest(&forged); res != dissem.Rejected {
		t.Fatalf("forged M0 packet: %v", res)
	}

	// Complete M0 legitimately, then forge a page packet.
	for idx := 0; idx < dst.PacketsInUnit(1); idx++ {
		pkts, _ := src.Packets(1, []int{idx}, 0)
		dst.Ingest(pkts[0])
	}
	page, _ := src.Packets(2, []int{0}, 0)
	forgedPage := *page[0]
	forgedPage.Payload = append([]byte(nil), page[0].Payload...)
	forgedPage.Payload[len(forgedPage.Payload)-1] ^= 1
	if res := dst.Ingest(&forgedPage); res != dissem.Rejected {
		t.Fatalf("forged page packet: %v", res)
	}
	// Replay at the wrong index must fail (position binding).
	misplaced := *page[0]
	misplaced.Index = 1
	if res := dst.Ingest(&misplaced); res != dissem.Rejected {
		t.Fatalf("misplaced packet: %v", res)
	}
}

func TestPageByPageOrderEnforced(t *testing.T) {
	f := newFixture(t, 200)
	dst := f.receiver(t)
	src := Preload(f.obj, f.sigCtx())
	// Data before the signature: nothing can be authenticated.
	pkts, _ := src.Packets(1, []int{0}, 0)
	if res := dst.Ingest(pkts[0]); res != dissem.Stale {
		t.Fatalf("pre-signature ingest: %v", res)
	}
	sig := src.SigPacket(0)
	dst.PreVerifySig(sig)
	dst.IngestSig(sig)
	// Page data before the hash page completes: stale (cannot verify).
	page, _ := src.Packets(2, []int{0}, 0)
	if res := dst.Ingest(page[0]); res != dissem.Stale {
		t.Fatalf("out-of-order page ingest: %v", res)
	}
}

func TestDuplicateSignatureIgnored(t *testing.T) {
	f := newFixture(t, 200)
	dst := f.receiver(t)
	src := Preload(f.obj, f.sigCtx())
	sig := src.SigPacket(0)
	dst.PreVerifySig(sig)
	dst.IngestSig(sig)
	if dst.PreVerifySig(sig) {
		t.Fatal("second signature passed weak check")
	}
	if res := dst.IngestSig(sig); res != dissem.Duplicate {
		t.Fatalf("duplicate sig: %v", res)
	}
	if dst.WantsSig() {
		t.Fatal("still wants sig after verification")
	}
}

func TestZeroPagesSignatureRejected(t *testing.T) {
	f := newFixture(t, 200)
	dst := f.receiver(t)
	src := Preload(f.obj, f.sigCtx())
	sig := src.SigPacket(0)
	forged := *sig
	forged.Pages = 0
	// Re-solve the puzzle so it reaches the signature check; the signature
	// itself binds Pages, so verification must fail.
	key, _ := f.chain.Key(1)
	sol, _ := puzzle.Solve(f.pp, forged.PuzzleMessage(), key)
	forged.PuzzleKey = key
	forged.PuzzleSol = sol
	if dst.PreVerifySig(&forged) {
		if res := dst.IngestSig(&forged); res != dissem.Rejected {
			t.Fatalf("pages=0 sig accepted: %v", res)
		}
	}
}

func TestM0GeometryFitsPayload(t *testing.T) {
	for _, k := range []int{4, 16, 32, 64} {
		geom, err := geometryFor(k*8, 72)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if geom.blockSize+geom.depth*8 > 72 {
			t.Fatalf("k=%d: block %d + proof %d exceeds payload", k, geom.blockSize, geom.depth*8)
		}
		if geom.numBlocks != 1<<geom.depth {
			t.Fatalf("k=%d: n0 %d != 2^%d", k, geom.numBlocks, geom.depth)
		}
	}
	if _, err := geometryFor(1<<20, 24); err == nil {
		t.Fatal("impossible geometry accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	key, _ := sign.GenerateDeterministic(1)
	chain, _ := puzzle.NewChain([]byte("x"), 2)
	if _, err := Build(BuildInput{Version: 1, Image: []byte{1}, Params: testParams(), Chain: chain, Puzzle: puzzle.Params{}}); err == nil {
		t.Fatal("missing key accepted")
	}
	if _, err := Build(BuildInput{Version: 1, Image: []byte{1}, Params: image.Params{}, Key: key, Chain: chain}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := Build(BuildInput{Version: 1, Image: nil, Params: testParams(), Key: key, Chain: chain}); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestSigPacketStampsSource(t *testing.T) {
	f := newFixture(t, 100)
	src := Preload(f.obj, f.sigCtx())
	sig := src.SigPacket(packet.NodeID(9))
	if sig.Src != 9 {
		t.Fatal("source not stamped")
	}
}
