package seluge

import (
	"fmt"

	"lrseluge/internal/crypt/hashx"
	"lrseluge/internal/crypt/merkle"
	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
)

// Handler is a node's Seluge object state, implementing
// dissem.ObjectHandler with immediate per-packet authentication.
type Handler struct {
	version uint16
	params  image.Params
	geom    m0Geometry
	sigCtx  *dissem.SigContext

	// Established by the verified signature packet.
	sig  *packet.Sig
	root hashx.Image
	g    int

	// Hash page assembly.
	m0Have  []bool
	m0Buf   [][]byte
	m0Count int
	m0Tree  *merkle.Tree // rebuilt once complete, for serving proofs

	// Image page assembly (current page = len(pagePkts)+1).
	curHave  []bool
	curBuf   [][]byte
	curCount int
	pagePkts [][][]byte // completed pages' packet payloads
}

var _ dissem.ObjectHandler = (*Handler)(nil)

// NewHandler creates an empty receiver-side handler. The M0 geometry must
// match the base station's, which it does automatically because it is a
// deterministic function of the preloaded parameters.
func NewHandler(version uint16, p image.Params, sigCtx *dissem.SigContext) (*Handler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sigCtx == nil {
		return nil, fmt.Errorf("seluge: nil signature context")
	}
	geom, err := geometryFor(p.K*hashx.Size, p.PacketPayload)
	if err != nil {
		return nil, err
	}
	h := &Handler{version: version, params: p, geom: geom, sigCtx: sigCtx}
	h.resetM0()
	h.resetCurrent()
	return h, nil
}

// Preload creates a handler that already possesses the whole object (the
// base station).
func Preload(o *Object, sigCtx *dissem.SigContext) *Handler {
	h := &Handler{
		version:  o.version,
		params:   o.params,
		geom:     o.geom,
		sigCtx:   sigCtx,
		sig:      o.sig,
		root:     o.tree.Root(),
		g:        o.g,
		m0Tree:   o.tree,
		m0Buf:    o.m0Blocks,
		m0Count:  o.geom.numBlocks,
		pagePkts: o.pagePkts,
	}
	h.m0Have = make([]bool, o.geom.numBlocks)
	for i := range h.m0Have {
		h.m0Have[i] = true
	}
	h.resetCurrent()
	return h
}

func (h *Handler) resetM0() {
	h.m0Have = make([]bool, h.geom.numBlocks)
	h.m0Buf = make([][]byte, h.geom.numBlocks)
	h.m0Count = 0
}

func (h *Handler) resetCurrent() {
	h.curHave = make([]bool, h.params.K)
	h.curBuf = make([][]byte, h.params.K)
	h.curCount = 0
}

// WipeVolatile implements dissem.ObjectHandler: a power loss discards the
// in-progress page's RAM buffer (and the hash page's, if still incomplete);
// completed pages, a complete hash page and the verified signature are
// flash-resident and survive.
func (h *Handler) WipeVolatile() {
	if h.m0Count < h.geom.numBlocks {
		h.resetM0()
	}
	h.resetCurrent()
}

// Version implements dissem.ObjectHandler.
func (h *Handler) Version() uint16 { return h.version }

// TotalUnits implements dissem.ObjectHandler: 0 until the signature is
// verified (Seluge never trusts unauthenticated object summaries).
func (h *Handler) TotalUnits() int {
	if h.sig == nil {
		return 0
	}
	return h.g + 2
}

// CompleteUnits implements dissem.ObjectHandler.
func (h *Handler) CompleteUnits() int {
	if h.sig == nil {
		return 0
	}
	if h.m0Count < h.geom.numBlocks {
		return 1
	}
	return 2 + len(h.pagePkts)
}

// PacketsInUnit implements dissem.ObjectHandler.
func (h *Handler) PacketsInUnit(u int) int {
	switch u {
	case 0:
		return 1
	case 1:
		return h.geom.numBlocks
	default:
		return h.params.K
	}
}

// NeededInUnit implements dissem.ObjectHandler: ARQ requires every packet.
func (h *Handler) NeededInUnit(u int) int { return h.PacketsInUnit(u) }

// HasPacket implements dissem.ObjectHandler.
func (h *Handler) HasPacket(u, idx int) bool {
	cu := h.CompleteUnits()
	switch {
	case u < cu:
		return true
	case u > cu:
		return false
	case u == 0:
		return false // signature still wanted
	case u == 1:
		return idx >= 0 && idx < len(h.m0Have) && h.m0Have[idx]
	default:
		return idx >= 0 && idx < len(h.curHave) && h.curHave[idx]
	}
}

// LearnTotal implements dissem.ObjectHandler: ignored; only the signed
// signature packet is trusted for the object's extent.
func (h *Handler) LearnTotal(int) {}

// WantsSig implements dissem.ObjectHandler.
func (h *Handler) WantsSig() bool { return h.sig == nil }

// PreVerifySig implements dissem.ObjectHandler: the message-specific puzzle
// check (one hash) that filters forged signature floods.
func (h *Handler) PreVerifySig(s *packet.Sig) bool {
	if h.sig != nil {
		return false
	}
	return h.sigCtx.WeakCheck(s)
}

// IngestSig implements dissem.ObjectHandler: the expensive verification.
func (h *Handler) IngestSig(s *packet.Sig) dissem.IngestResult {
	if h.sig != nil {
		return dissem.Duplicate
	}
	if !h.sigCtx.FullVerify(s) {
		return dissem.Rejected
	}
	if s.Pages == 0 {
		return dissem.Rejected
	}
	h.sig = &packet.Sig{
		Version:   s.Version,
		Pages:     s.Pages,
		Root:      s.Root,
		Signature: append([]byte(nil), s.Signature...),
		PuzzleKey: s.PuzzleKey,
		PuzzleSol: s.PuzzleSol,
	}
	h.root = s.Root
	h.g = int(s.Pages)
	return dissem.UnitComplete
}

// Ingest implements dissem.ObjectHandler: immediate authentication of every
// data packet on arrival, then storage.
func (h *Handler) Ingest(d *packet.Data) dissem.IngestResult {
	u := int(d.Unit)
	if u != h.CompleteUnits() {
		return dissem.Stale
	}
	switch u {
	case 0:
		return dissem.Stale // signature travels as a Sig packet
	case 1:
		return h.ingestM0(d)
	default:
		return h.ingestPage(d)
	}
}

func (h *Handler) ingestM0(d *packet.Data) dissem.IngestResult {
	idx := int(d.Index)
	if idx < 0 || idx >= h.geom.numBlocks || len(d.Payload) != h.geom.blockSize || len(d.Proof) != h.geom.depth {
		return dissem.Rejected
	}
	if !merkle.Verify(h.root, d.Payload, idx, d.Proof) {
		return dissem.Rejected
	}
	if h.m0Have[idx] {
		return dissem.Duplicate
	}
	h.m0Have[idx] = true
	h.m0Buf[idx] = append([]byte(nil), d.Payload...)
	h.m0Count++
	if h.m0Count < h.geom.numBlocks {
		return dissem.Stored
	}
	tree, err := merkle.Build(h.m0Buf)
	if err != nil || tree.Root() != h.root {
		// Impossible if every packet verified; defensive reset.
		h.resetM0()
		return dissem.Rejected
	}
	h.m0Tree = tree
	return dissem.UnitComplete
}

func (h *Handler) ingestPage(d *packet.Data) dissem.IngestResult {
	u := int(d.Unit)
	idx := int(d.Index)
	if idx < 0 || idx >= h.params.K || len(d.Payload) != h.params.PacketPayload || len(d.Proof) != 0 {
		return dissem.Rejected
	}
	want, ok := h.expectedHash(u, idx)
	if !ok || hashx.Sum(d.AuthBody()) != want {
		return dissem.Rejected
	}
	if h.curHave[idx] {
		return dissem.Duplicate
	}
	h.curHave[idx] = true
	h.curBuf[idx] = append([]byte(nil), d.Payload...)
	h.curCount++
	if h.curCount < h.params.K {
		return dissem.Stored
	}
	h.pagePkts = append(h.pagePkts, h.curBuf)
	h.resetCurrent()
	return dissem.UnitComplete
}

// expectedHash returns the pre-established hash image for packet idx of unit
// u: from the hash page for page 1, or from the embedded images in the
// previous page's packets otherwise.
func (h *Handler) expectedHash(u, idx int) (hashx.Image, bool) {
	page := u - 1 // 1-based image page number
	if page == 1 {
		if h.m0Count < h.geom.numBlocks {
			return hashx.Zero, false
		}
		joined := image.Join(h.m0Buf)
		if len(joined) < h.params.K*hashx.Size {
			return hashx.Zero, false
		}
		return hashx.FromBytes(joined[idx*hashx.Size:]), true
	}
	prev := page - 2 // index into pagePkts
	if prev < 0 || prev >= len(h.pagePkts) {
		return hashx.Zero, false
	}
	return hashx.FromBytes(h.pagePkts[prev][idx][:hashx.Size]), true
}

// Authentic implements dissem.ObjectHandler: verify a packet of any
// already-held unit against the established authentication material without
// storing it (used to keep forged packets from driving suppression).
func (h *Handler) Authentic(d *packet.Data) bool {
	if h.sig == nil {
		return false
	}
	u := int(d.Unit)
	idx := int(d.Index)
	switch {
	case u == 1:
		return idx >= 0 && idx < h.geom.numBlocks &&
			len(d.Payload) == h.geom.blockSize && len(d.Proof) == h.geom.depth &&
			merkle.Verify(h.root, d.Payload, idx, d.Proof)
	case u >= 2:
		if idx < 0 || idx >= h.params.K || len(d.Payload) != h.params.PacketPayload || len(d.Proof) != 0 {
			return false
		}
		want, ok := h.expectedHash(u, idx)
		return ok && hashx.Sum(d.AuthBody()) == want
	default:
		return false
	}
}

// SigPacket implements dissem.ObjectHandler.
func (h *Handler) SigPacket(src packet.NodeID) *packet.Sig {
	if h.sig == nil {
		return nil
	}
	out := *h.sig
	out.Src = src
	return &out
}

// Packets implements dissem.ObjectHandler.
func (h *Handler) Packets(u int, indices []int, src packet.NodeID) ([]*packet.Data, error) {
	if u >= h.CompleteUnits() {
		return nil, fmt.Errorf("seluge: unit %d not held", u)
	}
	out := make([]*packet.Data, 0, len(indices))
	switch u {
	case 1:
		for _, idx := range indices {
			if idx < 0 || idx >= h.geom.numBlocks {
				return nil, fmt.Errorf("seluge: M0 index %d out of range", idx)
			}
			proof, err := h.m0Tree.Proof(idx)
			if err != nil {
				return nil, err
			}
			out = append(out, &packet.Data{
				Src: src, Version: h.version, Unit: 1, Index: uint8(idx),
				Payload: h.m0Buf[idx], Proof: proof,
			})
		}
	default:
		page := u - 2 // index into pagePkts
		if page < 0 || page >= len(h.pagePkts) {
			return nil, fmt.Errorf("seluge: page unit %d not held", u)
		}
		for _, idx := range indices {
			if idx < 0 || idx >= h.params.K {
				return nil, fmt.Errorf("seluge: packet index %d out of range", idx)
			}
			out = append(out, &packet.Data{
				Src: src, Version: h.version, Unit: packet.Unit(u), Index: uint8(idx),
				Payload: h.pagePkts[page][idx],
			})
		}
	}
	return out, nil
}

// ReassembledImage strips the embedded hash images and padding, returning
// the received code image for end-to-end verification.
func (h *Handler) ReassembledImage(size int) ([]byte, error) {
	if h.sig == nil || len(h.pagePkts) < h.g {
		return nil, fmt.Errorf("seluge: object incomplete")
	}
	pages := make([][]byte, h.g)
	for i, pkts := range h.pagePkts {
		page := make([]byte, 0, h.params.SelugePageBytes())
		for _, payload := range pkts {
			page = append(page, payload[hashx.Size:]...)
		}
		pages[i] = page
	}
	return image.Reassemble(pages, size)
}

// NewPolicy returns the Seluge transmission policy: same union-of-requests
// behavior as Deluge.
func (h *Handler) NewPolicy() dissem.TxPolicy {
	return dissem.NewUnionPolicy(h.PacketsInUnit)
}
