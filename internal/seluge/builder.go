// Package seluge implements Seluge (Hyun, Ning, Liu & Du), the secure code
// dissemination baseline LR-Seluge is compared against (paper §II-B).
//
// Seluge keeps Deluge's page-by-page ARQ transport and adds immediate packet
// authentication: the hash image of the j-th packet of page i+1 is embedded
// in the j-th packet of page i (one-to-one chaining); a hash page M0 carries
// the hash images of page 1's packets; a Merkle tree authenticates M0's
// packets; and the base station signs the Merkle root, guarded by a
// message-specific puzzle.
//
// Unit numbering: unit 0 = signature packet, unit 1 = hash page M0 (all of
// its packets are required), units 2..g+1 = image pages 1..g (all k packets
// of a page are required — Seluge has no erasure coding, which is exactly
// its weakness in lossy networks).
package seluge

import (
	"fmt"

	"lrseluge/internal/crypt/hashx"
	"lrseluge/internal/crypt/merkle"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
)

// m0Geometry describes how the hash page is packetized.
type m0Geometry struct {
	depth     int // Merkle tree depth d
	numBlocks int // n0 = 2^d
	blockSize int // bytes per M0 block
}

// geometryFor picks the smallest Merkle tree whose per-packet cost (block +
// d sibling images) fits the payload budget.
func geometryFor(hashPageBytes, payload int) (m0Geometry, error) {
	for d := 0; d <= 8; d++ {
		n0 := 1 << d
		block := (hashPageBytes + n0 - 1) / n0
		if block+d*hashx.Size <= payload {
			return m0Geometry{depth: d, numBlocks: n0, blockSize: block}, nil
		}
	}
	return m0Geometry{}, fmt.Errorf("seluge: hash page of %d bytes does not fit payload %d", hashPageBytes, payload)
}

// BuildInput collects everything the base station needs to preprocess a code
// image (paper §IV-C analogue for Seluge).
type BuildInput struct {
	Version uint16
	Image   []byte
	Params  image.Params
	Key     *sign.KeyPair
	Chain   *puzzle.Chain
	Puzzle  puzzle.Params
}

// Object is the fully preprocessed code image held by the base station.
type Object struct {
	version   uint16
	params    image.Params
	imageSize int
	g         int

	// pagePkts[i-1][j] is the payload of packet P_{i,j}: the embedded hash
	// image h_{i+1,j} followed by the image block m_{i,j}.
	pagePkts [][][]byte
	m0Blocks [][]byte
	geom     m0Geometry
	tree     *merkle.Tree
	sig      *packet.Sig
}

// Build runs Seluge's base-station preprocessing: pages are packetized in
// reverse order so each page's packets can embed the next page's hash
// images.
func Build(in BuildInput) (*Object, error) {
	if err := in.Params.Validate(); err != nil {
		return nil, err
	}
	if in.Key == nil || in.Chain == nil {
		return nil, fmt.Errorf("seluge: missing signing key or puzzle chain")
	}
	p := in.Params
	pages, err := image.Partition(in.Image, p.SelugePageBytes())
	if err != nil {
		return nil, err
	}
	g := len(pages)
	if g+2 > 250 {
		return nil, fmt.Errorf("seluge: image needs %d units, exceeding the unit space", g+2)
	}
	blockSize := p.PacketPayload - hashx.Size

	pagePkts := make([][][]byte, g)
	// next[j] is h_{i+1,j} while building page i; zero for page g.
	next := make([]hashx.Image, p.K)
	for i := g; i >= 1; i-- {
		blocks, err := image.Blocks(pages[i-1], p.K)
		if err != nil {
			return nil, err
		}
		pkts := make([][]byte, p.K)
		cur := make([]hashx.Image, p.K)
		for j := 0; j < p.K; j++ {
			payload := make([]byte, 0, p.PacketPayload)
			payload = append(payload, next[j][:]...)
			payload = append(payload, blocks[j]...)
			if len(payload) != blockSize+hashx.Size {
				return nil, fmt.Errorf("seluge: internal payload size mismatch")
			}
			pkts[j] = payload
			cur[j] = hashx.Sum(authBody(packet.Unit(i+1), uint8(j), payload))
		}
		pagePkts[i-1] = pkts
		next = cur
	}

	// Hash page M0: concatenation of page 1's packet hash images.
	m0 := hashx.Concat(next)
	geom, err := geometryFor(len(m0), p.PacketPayload)
	if err != nil {
		return nil, err
	}
	padded := make([]byte, geom.numBlocks*geom.blockSize)
	copy(padded, m0)
	m0Blocks := make([][]byte, geom.numBlocks)
	for j := range m0Blocks {
		m0Blocks[j] = padded[j*geom.blockSize : (j+1)*geom.blockSize]
	}
	tree, err := merkle.Build(m0Blocks)
	if err != nil {
		return nil, err
	}

	sig := &packet.Sig{
		Version: in.Version,
		Pages:   uint8(g),
		Root:    tree.Root(),
	}
	sigBytes, err := in.Key.Sign(sig.SignedMessage())
	if err != nil {
		return nil, err
	}
	sig.Signature = sigBytes
	key, err := in.Chain.Key(int(in.Version))
	if err != nil {
		return nil, err
	}
	sig.PuzzleKey = key
	sol, err := puzzle.Solve(in.Puzzle, sig.PuzzleMessage(), key)
	if err != nil {
		return nil, err
	}
	sig.PuzzleSol = sol

	return &Object{
		version:   in.Version,
		params:    p,
		imageSize: len(in.Image),
		g:         g,
		pagePkts:  pagePkts,
		m0Blocks:  m0Blocks,
		geom:      geom,
		tree:      tree,
		sig:       sig,
	}, nil
}

// Version returns the code version.
func (o *Object) Version() uint16 { return o.version }

// NumPages returns g.
func (o *Object) NumPages() int { return o.g }

// TotalUnits returns g+2 (signature + hash page + g pages).
func (o *Object) TotalUnits() int { return o.g + 2 }

// ImageSize returns the original image length.
func (o *Object) ImageSize() int { return o.imageSize }

// M0Packets returns n0, the hash-page packet count.
func (o *Object) M0Packets() int { return o.geom.numBlocks }

// Root returns the signed Merkle root.
func (o *Object) Root() hashx.Image { return o.tree.Root() }

// authBody replicates packet.Data.AuthBody for payloads not yet wrapped in a
// packet: the hash image covers (unit, index, payload).
func authBody(unit packet.Unit, index uint8, payload []byte) []byte {
	b := make([]byte, 0, 2+len(payload))
	b = append(b, byte(unit), index)
	b = append(b, payload...)
	return b
}
