package analysis

import (
	"math"
	"testing"
)

func TestSelugeNoLossIsK(t *testing.T) {
	got, err := SelugeDataTx(32, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("p=0: %f, want 32", got)
	}
}

func TestSelugeSingleReceiverGeometric(t *testing.T) {
	// With one receiver, E[T] per packet is 1/(1-p).
	for _, p := range []float64{0.1, 0.3, 0.5} {
		got, err := SelugeDataTx(1, 1, p)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 - p)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("p=%f: %f, want %f", p, got, want)
		}
	}
}

func TestSelugeMonotoneInLossAndReceivers(t *testing.T) {
	prev := 0.0
	for _, p := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		got, err := SelugeDataTx(32, 20, p)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev && p > 0 {
			t.Fatalf("not increasing in p at %f", p)
		}
		prev = got
	}
	prev = 0
	for _, n := range []int{1, 2, 5, 10, 20, 40} {
		got, err := SelugeDataTx(32, n, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Fatalf("not increasing in N at %d", n)
		}
		prev = got
	}
}

func TestACKLRNoLossIsN(t *testing.T) {
	got, err := ACKBasedLRDataTx(32, 48, 32, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 48 {
		t.Fatalf("p=0: %f, want 48", got)
	}
}

func TestACKLRStepsUpWhenOneRoundStopsSufficing(t *testing.T) {
	// The paper observes a jump when the loss rate crosses the point where
	// a single round of n packets stops delivering k' with high
	// probability (n=48, k'=32 => around 1 - 32/48 = 1/3).
	low, err := ACKBasedLRDataTx(32, 48, 32, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	high, err := ACKBasedLRDataTx(32, 48, 32, 10, 0.42)
	if err != nil {
		t.Fatal(err)
	}
	if high < 1.6*low {
		t.Fatalf("expected a round jump: low=%f high=%f", low, high)
	}
	if low < 48 || math.Abs(low-48) > 4 {
		t.Fatalf("below the knee one round should nearly suffice: %f", low)
	}
}

func TestACKLRBeatsSelugeInLossyRegime(t *testing.T) {
	// The motivating comparison: for meaningful loss, the erasure-coded
	// scheme needs fewer transmissions per page even in its ACK-based
	// upper-bound form.
	for _, p := range []float64{0.15, 0.2, 0.25} {
		seluge, err := SelugeDataTx(32, 20, p)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := ACKBasedLRDataTx(32, 48, 32, 20, p)
		if err != nil {
			t.Fatal(err)
		}
		if lr >= seluge {
			t.Fatalf("p=%f: ACK-LR %f >= Seluge %f", p, lr, seluge)
		}
	}
}

func TestLRLowerBound(t *testing.T) {
	got, err := LRLowerBoundDataTx(32, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-40) > 1e-9 {
		t.Fatalf("floor %f, want 40", got)
	}
	if _, err := LRLowerBoundDataTx(0, 0.2); err == nil {
		t.Fatal("invalid kprime accepted")
	}
}

func TestArgumentValidation(t *testing.T) {
	if _, err := SelugeDataTx(0, 5, 0.1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SelugeDataTx(5, 0, 0.1); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := SelugeDataTx(5, 5, 1.0); err == nil {
		t.Fatal("p=1 accepted")
	}
	if _, err := SelugeDataTx(5, 5, -0.1); err == nil {
		t.Fatal("p<0 accepted")
	}
	if _, err := ACKBasedLRDataTx(8, 4, 8, 5, 0.1); err == nil {
		t.Fatal("n<k accepted")
	}
	if _, err := ACKBasedLRDataTx(8, 16, 4, 5, 0.1); err == nil {
		t.Fatal("k'<k accepted")
	}
}

func TestBinomTail(t *testing.T) {
	if got := binomTailGE(10, 0, 0.5); got != 1 {
		t.Fatalf("P(X>=0) = %f", got)
	}
	if got := binomTailGE(10, 11, 0.5); got > 1e-12 {
		t.Fatalf("P(X>=11 of 10) = %f", got)
	}
	// P(Bin(2, 0.5) >= 1) = 0.75
	if got := binomTailGE(2, 1, 0.5); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("P = %f, want 0.75", got)
	}
	if got := binomTailGE(10, 5, 0); got != 0 {
		t.Fatalf("q=0 tail = %f", got)
	}
	if got := binomTailGE(10, 5, 1); got != 1 {
		t.Fatalf("q=1 tail = %f", got)
	}
}
