// Package analysis provides the closed-form performance models of the
// paper's §V: the expected number of data-packet transmissions needed to
// deliver one page to N one-hop receivers whose packets are lost
// independently with probability p, under
//
//   - Seluge's SNACK-driven ARQ (Theorem 1 analogue): each of the k packets
//     is retransmitted until every receiver holds it, and
//   - ACK-based LR-Seluge (Theorem 2 analogue): the sender transmits the n
//     encoded packets in rounds until every receiver holds at least k'
//     distinct packets; an upper bound on real (SNACK-driven, scheduled)
//     LR-Seluge, which the simulation results stay below (paper Fig. 3).
package analysis

import (
	"fmt"
	"math"
)

// convergence controls for the infinite sums.
const (
	epsilon  = 1e-12
	maxTerms = 100000
)

// SelugeDataTx returns the expected number of data-packet transmissions for
// one page of k packets under Seluge/Deluge ARQ: the number of times packet
// j must be transmitted is T_j = max over receivers of a Geometric(1-p)
// variable, so
//
//	E[total] = k * sum_{t>=0} (1 - (1 - p^t)^N).
func SelugeDataTx(k, receivers int, p float64) (float64, error) {
	if err := checkArgs(k, k, k, receivers, p); err != nil {
		return 0, err
	}
	if p == 0 {
		return float64(k), nil
	}
	sum := 0.0
	pt := 1.0 // p^t
	for t := 0; t < maxTerms; t++ {
		term := 1 - math.Pow(1-pt, float64(receivers))
		sum += term
		if term < epsilon {
			break
		}
		pt *= p
	}
	return float64(k) * sum, nil
}

// ACKBasedLRDataTx returns the expected number of data-packet transmissions
// for one page under ACK-based LR-Seluge: the sender repeats rounds of all n
// encoded packets; receiver i is done after round r if it holds at least k'
// distinct packets, i.e. Binomial(n, 1-p^r) >= k'. Then
//
//	E[total] = n * E[R],  E[R] = sum_{r>=0} (1 - F(r)^N),
//	F(r) = P(Bin(n, 1-p^r) >= k').
//
// The jump the paper observes between p=0.3 and p=0.4 (Fig. 3) is the point
// where one round stops sufficing with high probability.
func ACKBasedLRDataTx(k, n, kprime, receivers int, p float64) (float64, error) {
	if err := checkArgs(k, n, kprime, receivers, p); err != nil {
		return 0, err
	}
	if p == 0 {
		return float64(n), nil
	}
	sum := 0.0
	pr := 1.0 // p^r
	for r := 0; r < maxTerms; r++ {
		f := binomTailGE(n, kprime, 1-pr)
		term := 1 - math.Pow(f, float64(receivers))
		sum += term
		if term < epsilon {
			break
		}
		pr *= p
	}
	return float64(n) * sum, nil
}

// LRLowerBoundDataTx returns the information-theoretic floor for LR-Seluge:
// no scheme can deliver a page with fewer transmissions than the maximum
// over receivers of the number needed for k' successes, i.e.
// E[max_i NegBinomial(k', 1-p)] >= k'/(1-p). We return the simple k'/(1-p)
// single-receiver expectation, useful as a sanity floor in benchmarks.
func LRLowerBoundDataTx(kprime int, p float64) (float64, error) {
	if kprime < 1 || p < 0 || p >= 1 {
		return 0, fmt.Errorf("analysis: invalid kprime=%d p=%f", kprime, p)
	}
	return float64(kprime) / (1 - p), nil
}

// binomTailGE returns P(Bin(n, q) >= k) computed by direct summation in log
// space for numerical stability.
func binomTailGE(n, k int, q float64) float64 {
	if k <= 0 {
		return 1
	}
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	total := 0.0
	for i := k; i <= n; i++ {
		total += math.Exp(logChoose(n, i) + float64(i)*math.Log(q) + float64(n-i)*math.Log(1-q))
	}
	if total > 1 {
		total = 1
	}
	return total
}

func logChoose(n, k int) float64 {
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

func checkArgs(k, n, kprime, receivers int, p float64) error {
	if k < 1 || n < k || kprime < k || kprime > n || receivers < 1 {
		return fmt.Errorf("analysis: invalid k=%d n=%d k'=%d N=%d", k, n, kprime, receivers)
	}
	if p < 0 || p >= 1 {
		return fmt.Errorf("analysis: loss probability %f outside [0,1)", p)
	}
	return nil
}
