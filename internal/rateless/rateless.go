// Package rateless implements a Rateless Deluge / SYNAPSE-style baseline:
// page-by-page dissemination where each page is served as LT-coded symbols
// instead of ARQ retransmissions (the loss-resilient-but-INSECURE line of
// work the paper positions LR-Seluge against, §I and §VII).
//
// Every node derives the same LT encoder from a decoded page, so any node
// can serve deterministic symbols identified by (page, symbol index); a
// receiver decodes by belief propagation once slightly more than k symbols
// arrive. There is NO packet authentication: the encoded symbol stream is
// unbounded in principle, which is precisely why Seluge-style hash chaining
// cannot be precomputed for it. Comparing this baseline with LR-Seluge
// quantifies what the fixed-rate construction gives up (a little coding
// overhead) and gains (immediate authentication).
package rateless

import (
	"fmt"

	"lrseluge/internal/dissem"
	"lrseluge/internal/erasure/lt"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
)

// poolFactor bounds the distinct symbol indices per page to poolFactor*k so
// SNACK bit vectors stay finite; real rateless senders are unbounded. LT
// overhead at small k is substantial (the robust soliton bound is
// asymptotic), so the pool is 3k: large enough that decoding from the full
// pool fails with negligible probability.
const poolFactor = 3

// ltOverheadEstimate returns the SNACK-planning estimate of how many
// symbols a receiver needs: k plus robust-soliton overhead.
func ltOverheadEstimate(k int) int { return k + k/4 + 4 }

// symbolSeed derives the deterministic LT seed for symbol idx of unit u.
func symbolSeed(u, idx int) int64 { return int64(u)<<20 | int64(idx) }

// Object is the base station's prepared image.
type Object struct {
	version   uint16
	params    image.Params
	imageSize int
	pages     [][]byte // g pages of k*(payload-0) bytes; symbols same size as blocks
	encoders  []*lt.Encoder
}

// blockSize returns the LT symbol payload size (the full packet payload;
// the pool index rides in the packet header's Index field).
func blockSize(p image.Params) int { return p.PacketPayload }

// pageBytes returns image bytes per page.
func pageBytes(p image.Params) int { return p.K * blockSize(p) }

// NewObject partitions and prepares a code image.
func NewObject(version uint16, data []byte, p image.Params) (*Object, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if poolFactor*p.K > 255 {
		return nil, fmt.Errorf("rateless: k=%d overflows the symbol index space", p.K)
	}
	pages, err := image.Partition(data, pageBytes(p))
	if err != nil {
		return nil, err
	}
	if len(pages) > 250 {
		return nil, fmt.Errorf("rateless: image needs %d pages, exceeding the unit space", len(pages))
	}
	o := &Object{version: version, params: p, imageSize: len(data), pages: pages}
	o.encoders = make([]*lt.Encoder, len(pages))
	for i, page := range pages {
		blocks, err := image.Blocks(page, p.K)
		if err != nil {
			return nil, err
		}
		enc, err := lt.NewEncoder(blocks, lt.DefaultParams())
		if err != nil {
			return nil, err
		}
		o.encoders[i] = enc
	}
	return o, nil
}

// Version returns the code version.
func (o *Object) Version() uint16 { return o.version }

// NumPages returns g.
func (o *Object) NumPages() int { return len(o.pages) }

// ImageSize returns the original image length.
func (o *Object) ImageSize() int { return o.imageSize }

// Handler is a node's object state, implementing dissem.ObjectHandler.
type Handler struct {
	version uint16
	params  image.Params
	total   int

	pages    [][]byte // decoded pages
	encoders []*lt.Encoder

	dec     *lt.Decoder
	have    []bool // pool indices received for the current page
	haveCnt int
}

var _ dissem.ObjectHandler = (*Handler)(nil)

// NewHandler creates an empty receiver-side handler.
func NewHandler(version uint16, p image.Params) (*Handler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if poolFactor*p.K > 255 {
		return nil, fmt.Errorf("rateless: k=%d overflows the symbol index space", p.K)
	}
	h := &Handler{version: version, params: p}
	if err := h.resetCurrent(); err != nil {
		return nil, err
	}
	return h, nil
}

// Preload creates a handler that already possesses the whole object.
func Preload(o *Object) *Handler {
	h := &Handler{
		version:  o.version,
		params:   o.params,
		total:    len(o.pages),
		pages:    o.pages,
		encoders: o.encoders,
	}
	_ = h.resetCurrent()
	return h
}

func (h *Handler) resetCurrent() error {
	dec, err := lt.NewDecoder(h.params.K, blockSize(h.params), lt.DefaultParams())
	if err != nil {
		return err
	}
	h.dec = dec
	h.have = make([]bool, poolFactor*h.params.K)
	h.haveCnt = 0
	return nil
}

// WipeVolatile implements dissem.ObjectHandler: a power loss discards the
// in-progress page's LT decoder state; completed pages survive in flash. The
// reset cannot fail here — the decoder parameters were validated when the
// handler was built.
func (h *Handler) WipeVolatile() {
	_ = h.resetCurrent()
}

// Version implements dissem.ObjectHandler.
func (h *Handler) Version() uint16 { return h.version }

// TotalUnits implements dissem.ObjectHandler.
func (h *Handler) TotalUnits() int { return h.total }

// CompleteUnits implements dissem.ObjectHandler.
func (h *Handler) CompleteUnits() int { return len(h.pages) }

// PacketsInUnit implements dissem.ObjectHandler: the per-page symbol pool.
func (h *Handler) PacketsInUnit(int) int { return poolFactor * h.params.K }

// NeededInUnit implements dissem.ObjectHandler: the LT overhead estimate
// (decoding is probabilistic; completion is decided by the decoder, and a
// short request round triggers a fresh SNACK).
func (h *Handler) NeededInUnit(int) int { return ltOverheadEstimate(h.params.K) }

// HasPacket implements dissem.ObjectHandler.
func (h *Handler) HasPacket(u, idx int) bool {
	switch {
	case u < len(h.pages):
		return true
	case u == len(h.pages) && idx >= 0 && idx < len(h.have):
		return h.have[idx]
	default:
		return false
	}
}

// LearnTotal implements dissem.ObjectHandler: like Deluge, object summaries
// are trusted (no authentication at all).
func (h *Handler) LearnTotal(total int) {
	if h.total == 0 && total > 0 {
		h.total = total
	}
}

// Ingest implements dissem.ObjectHandler: feed the symbol to the LT peeling
// decoder; the page completes whenever the decoder does.
func (h *Handler) Ingest(d *packet.Data) dissem.IngestResult {
	u := int(d.Unit)
	if u != len(h.pages) {
		return dissem.Stale
	}
	idx := int(d.Index)
	if idx < 0 || idx >= len(h.have) || len(d.Payload) != blockSize(h.params) || len(d.Proof) != 0 {
		return dissem.Rejected
	}
	if h.have[idx] {
		return dissem.Duplicate
	}
	h.have[idx] = true
	h.haveCnt++
	//lrlint:ignore verify-before-use Rateless Deluge decodes unauthenticated LT symbols by design (paper §II-B, §VII); this decode-before-verify exposure is exactly the DoS vector LR-Seluge's immediate authentication closes
	done, err := h.dec.AddSeed(symbolSeed(u, idx), d.Payload)
	if err != nil {
		return dissem.Rejected
	}
	if !done {
		return dissem.Stored
	}
	blocks, err := h.dec.Blocks()
	if err != nil {
		return dissem.Stored
	}
	page := image.Join(blocks)
	enc, err := lt.NewEncoder(blocks, lt.DefaultParams())
	if err != nil {
		return dissem.Stored
	}
	h.pages = append(h.pages, page)
	h.encoders = append(h.encoders, enc)
	if err := h.resetCurrent(); err != nil {
		return dissem.Rejected
	}
	return dissem.UnitComplete
}

// Authentic implements dissem.ObjectHandler: structural checks only — this
// baseline has no cryptographic protection, which is its point.
func (h *Handler) Authentic(d *packet.Data) bool {
	return int(d.Index) < poolFactor*h.params.K && len(d.Payload) == blockSize(h.params)
}

// WantsSig implements dissem.ObjectHandler.
func (h *Handler) WantsSig() bool { return false }

// PreVerifySig implements dissem.ObjectHandler.
func (h *Handler) PreVerifySig(*packet.Sig) bool { return false }

// IngestSig implements dissem.ObjectHandler.
func (h *Handler) IngestSig(*packet.Sig) dissem.IngestResult { return dissem.Stale }

// SigPacket implements dissem.ObjectHandler.
func (h *Handler) SigPacket(packet.NodeID) *packet.Sig { return nil }

// Packets implements dissem.ObjectHandler: regenerate symbols from the
// shared deterministic encoder.
func (h *Handler) Packets(u int, indices []int, src packet.NodeID) ([]*packet.Data, error) {
	if u < 0 || u >= len(h.pages) {
		return nil, fmt.Errorf("rateless: unit %d not held", u)
	}
	enc := h.encoders[u]
	out := make([]*packet.Data, 0, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= poolFactor*h.params.K {
			return nil, fmt.Errorf("rateless: symbol index %d out of range", idx)
		}
		sym := enc.Symbol(symbolSeed(u, idx))
		out = append(out, &packet.Data{
			Src: src, Version: h.version, Unit: packet.Unit(u), Index: uint8(idx),
			Payload: sym.Data,
		})
	}
	return out, nil
}

// ReassembledImage returns the received image trimmed to size.
func (h *Handler) ReassembledImage(size int) ([]byte, error) {
	if h.total == 0 || len(h.pages) < h.total {
		return nil, fmt.Errorf("rateless: object incomplete (%d/%d pages)", len(h.pages), h.total)
	}
	return image.Reassemble(h.pages, size)
}
