package rateless

import (
	"bytes"
	"testing"

	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
)

func testParams() image.Params {
	return image.Params{PacketPayload: 24, K: 8, N: 8}
}

func TestObjectAndPreload(t *testing.T) {
	data := image.Random(500, 1)
	obj, err := NewObject(1, data, testParams())
	if err != nil {
		t.Fatal(err)
	}
	// page = 8*24 = 192 bytes -> 3 pages
	if obj.NumPages() != 3 {
		t.Fatalf("pages %d", obj.NumPages())
	}
	h := Preload(obj)
	if h.CompleteUnits() != 3 || h.TotalUnits() != 3 {
		t.Fatal("preload incomplete")
	}
	got, err := h.ReassembledImage(len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("preload image mismatch: %v", err)
	}
}

func TestSymbolTransferDecodes(t *testing.T) {
	data := image.Random(500, 2)
	obj, err := NewObject(1, data, testParams())
	if err != nil {
		t.Fatal(err)
	}
	src := Preload(obj)
	dst, err := NewHandler(1, testParams())
	if err != nil {
		t.Fatal(err)
	}
	dst.LearnTotal(obj.NumPages())
	for dst.CompleteUnits() < dst.TotalUnits() {
		u := dst.CompleteUnits()
		before := dst.CompleteUnits()
		for idx := 0; idx < dst.PacketsInUnit(u); idx++ {
			pkts, err := src.Packets(u, []int{idx}, 0)
			if err != nil {
				t.Fatal(err)
			}
			res := dst.Ingest(pkts[0])
			if res == dissem.Rejected {
				t.Fatalf("unit %d idx %d rejected", u, idx)
			}
			if dst.CompleteUnits() > before {
				break
			}
		}
		if dst.CompleteUnits() == before {
			t.Fatalf("unit %d did not decode from the full pool", u)
		}
	}
	got, err := dst.ReassembledImage(len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("image mismatch: %v", err)
	}
}

func TestRelayedSymbolsIdentical(t *testing.T) {
	// The shared deterministic encoder: a node that decoded a page must
	// generate byte-identical symbols to the base station's.
	data := image.Random(300, 3)
	obj, _ := NewObject(1, data, testParams())
	src := Preload(obj)
	dst, _ := NewHandler(1, testParams())
	dst.LearnTotal(obj.NumPages())
	for dst.CompleteUnits() < 1 {
		for idx := 0; idx < dst.PacketsInUnit(0) && dst.CompleteUnits() < 1; idx++ {
			pkts, _ := src.Packets(0, []int{idx}, 0)
			dst.Ingest(pkts[0])
		}
	}
	for idx := 0; idx < dst.PacketsInUnit(0); idx++ {
		a, err := src.Packets(0, []int{idx}, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.Packets(0, []int{idx}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a[0].Payload, b[0].Payload) {
			t.Fatalf("symbol %d differs between nodes", idx)
		}
	}
}

func TestIngestRules(t *testing.T) {
	data := image.Random(300, 4)
	obj, _ := NewObject(1, data, testParams())
	src := Preload(obj)
	dst, _ := NewHandler(1, testParams())
	dst.LearnTotal(obj.NumPages())

	pkts, _ := src.Packets(0, []int{0}, 0)
	if res := dst.Ingest(pkts[0]); res != dissem.Stored {
		t.Fatalf("first symbol: %v", res)
	}
	if res := dst.Ingest(pkts[0]); res != dissem.Duplicate {
		t.Fatalf("duplicate symbol: %v", res)
	}
	future, _ := src.Packets(1, []int{0}, 0)
	if res := dst.Ingest(future[0]); res != dissem.Stale {
		t.Fatalf("future page: %v", res)
	}
	bad := &packet.Data{Version: 1, Unit: 0, Index: 200, Payload: make([]byte, 24)}
	if res := dst.Ingest(bad); res != dissem.Rejected {
		t.Fatalf("out-of-pool index: %v", res)
	}
	short := &packet.Data{Version: 1, Unit: 0, Index: 1, Payload: []byte("x")}
	if res := dst.Ingest(short); res != dissem.Rejected {
		t.Fatalf("short symbol: %v", res)
	}
}

func TestNoSecurity(t *testing.T) {
	h, _ := NewHandler(1, testParams())
	if h.WantsSig() || h.PreVerifySig(nil) || h.SigPacket(0) != nil {
		t.Fatal("rateless baseline must not have signature machinery")
	}
	ok := &packet.Data{Index: 0, Payload: make([]byte, 24)}
	if !h.Authentic(ok) {
		t.Fatal("structurally valid packet rejected")
	}
}

func TestPoolOverflowRejected(t *testing.T) {
	big := image.Params{PacketPayload: 72, K: 200, N: 200}
	if _, err := NewHandler(1, big); err == nil {
		t.Fatal("oversized pool accepted")
	}
}
