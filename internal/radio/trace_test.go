package radio

import (
	"math/rand"
	"testing"

	"lrseluge/internal/sim"
)

func TestTraceValidate(t *testing.T) {
	good := Trace{Interval: sim.Second, Loss: []float64{0, 0.5, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Trace{
		{Interval: 0, Loss: []float64{0.1}},
		{Interval: sim.Second, Loss: nil},
		{Interval: sim.Second, Loss: []float64{1.5}},
		{Interval: sim.Second, Loss: []float64{-0.1}},
	}
	for i, tr := range bad {
		if tr.Validate() == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestTraceAtAndWrap(t *testing.T) {
	tr := Trace{Interval: sim.Second, Loss: []float64{0.1, 0.2, 0.3}}
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{0, 0.1},
		{999 * sim.Millisecond, 0.1},
		{sim.Second, 0.2},
		{2 * sim.Second, 0.3},
		{3 * sim.Second, 0.1}, // wrap
		{7 * sim.Second, 0.2},
		{-5, 0.1},
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %f, want %f", c.t, got, c.want)
		}
	}
	if tr.Duration() != 3*sim.Second {
		t.Fatal("duration wrong")
	}
}

func TestSyntheticHeavyTraceShape(t *testing.T) {
	tr := SyntheticHeavyTrace(2000, 100*sim.Millisecond, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic for a seed.
	tr2 := SyntheticHeavyTrace(2000, 100*sim.Millisecond, 3)
	for i := range tr.Loss {
		if tr.Loss[i] != tr2.Loss[i] {
			t.Fatal("trace generation not deterministic")
		}
	}
	// It must contain both quiet samples and burst samples.
	quiet, burst := 0, 0
	for _, p := range tr.Loss {
		if p < 0.2 {
			quiet++
		}
		if p > 0.6 {
			burst++
		}
	}
	if quiet == 0 || burst == 0 {
		t.Fatalf("trace lacks burst structure: quiet=%d burst=%d", quiet, burst)
	}
	if burst > quiet {
		t.Fatalf("bursts dominate: quiet=%d burst=%d", quiet, burst)
	}
}

func TestTraceLossDropRate(t *testing.T) {
	tr := Trace{Interval: sim.Second, Loss: []float64{0.5}}
	model := TraceLoss{Trace: tr}
	rng := rand.New(rand.NewSource(1))
	drops := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if model.Drop(0, 1, 1.0, 0, rng) {
			drops++
		}
	}
	rate := float64(drops) / trials
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("drop rate %f, want ~0.5", rate)
	}
}
