package radio

import (
	"testing"

	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
	"lrseluge/internal/trace"
)

// TestTraceAtExactIntervalBoundaries pins the wrap-around arithmetic of
// Trace.At at the exact sample and trace boundaries: the instant t = k*I
// belongs to sample k (half-open intervals), and the instant t = Duration()
// wraps to sample 0, not past the end of the slice.
func TestTraceAtExactIntervalBoundaries(t *testing.T) {
	const iv = sim.Second
	tr := Trace{Interval: iv, Loss: []float64{0.1, 0.2, 0.3}}
	d := tr.Duration()
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{0, 0.1},
		{iv - 1, 0.1},          // last instant of sample 0
		{iv, 0.2},              // exact sample boundary opens sample 1
		{2*iv - 1, 0.2},        // last instant of sample 1
		{2 * iv, 0.3},          // exact boundary into the last sample
		{d - 1, 0.3},           // last instant before the trace wraps
		{d, 0.1},               // exact trace boundary wraps to sample 0
		{d + iv, 0.2},          // one sample into the second lap
		{2 * d, 0.1},           // exact boundary of the second lap
		{10*d + 2*iv, 0.3},     // deep wrap, exact sample boundary
		{10*d + 2*iv - 1, 0.2}, // one instant earlier, previous sample
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

// TestDropAttributionSingleCount is the lost-delivery accounting contract:
// every dropped delivery is attributed to exactly one cause, with the metrics
// counters and the trace stream agreeing. Fault-blocked deliveries never
// consult the loss model (no double count, no stolen randomness); channel
// drops never touch the fault counter.
func TestDropAttributionSingleCount(t *testing.T) {
	inner := &countingLoss{}
	eng := sim.New()
	g, err := topo.Complete(2)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.New()
	nw, err := New(eng, g, inner, DefaultConfig(), col, 5)
	if err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRing(64)
	tr, err := trace.New(eng, ring)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetTracer(tr)
	ov := nw.InstallFaultOverlay()
	for id := 0; id < 2; id++ {
		if err := nw.Attach(packet.NodeID(id), receiverFunc(func(packet.NodeID, packet.Packet) {})); err != nil {
			t.Fatal(err)
		}
	}
	adv := &packet.Adv{Src: 0, Version: 1}
	drops := func(r trace.DropReason) int {
		n := 0
		for _, e := range ring.Events() {
			if e.Kind == trace.KindDrop && e.Reason == r {
				n++
			}
		}
		return n
	}

	// Fault-blocked delivery: one fault drop, zero channel losses, and the
	// loss model is never consulted.
	ov.SetNodeDown(1, true)
	nw.Broadcast(0, adv)
	eng.Run(sim.Second)
	if col.FaultDrops() != 1 || col.ChannelLosses() != 0 {
		t.Fatalf("fault-blocked delivery: fault_drops=%d channel_losses=%d, want 1/0",
			col.FaultDrops(), col.ChannelLosses())
	}
	if inner.calls != 0 {
		t.Fatalf("fault-blocked delivery consulted the loss model %d times", inner.calls)
	}
	if drops(trace.DropFault) != 1 || drops(trace.DropChannel) != 0 {
		t.Fatalf("trace drops: fault=%d channel=%d, want 1/0",
			drops(trace.DropFault), drops(trace.DropChannel))
	}

	// Channel drop with the node back up: one channel loss, the fault
	// counter unchanged.
	ov.SetNodeDown(1, false)
	inner.drop = true
	nw.Broadcast(0, adv)
	eng.Run(eng.Now() + sim.Second)
	if col.FaultDrops() != 1 || col.ChannelLosses() != 1 {
		t.Fatalf("channel drop: fault_drops=%d channel_losses=%d, want 1/1",
			col.FaultDrops(), col.ChannelLosses())
	}
	if inner.calls != 1 {
		t.Fatalf("loss model calls = %d, want 1", inner.calls)
	}
	if drops(trace.DropFault) != 1 || drops(trace.DropChannel) != 1 {
		t.Fatalf("trace drops: fault=%d channel=%d, want 1/1",
			drops(trace.DropFault), drops(trace.DropChannel))
	}

	// Successful delivery: no new drop anywhere, one rx event.
	inner.drop = false
	nw.Broadcast(0, adv)
	eng.Run(eng.Now() + sim.Second)
	if col.FaultDrops() != 1 || col.ChannelLosses() != 1 {
		t.Fatal("successful delivery moved a drop counter")
	}
	rx := 0
	for _, e := range ring.Events() {
		if e.Kind == trace.KindRx {
			rx++
		}
	}
	if rx != 1 {
		t.Fatalf("rx events = %d, want 1", rx)
	}
}
