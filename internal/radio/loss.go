package radio

import (
	"math"
	"math/rand"

	"lrseluge/internal/sim"
)

// LossModel decides, per delivery attempt, whether a packet is dropped on
// the link from one node to another. linkQuality is the topology's base
// delivery probability for the link (1.0 in one-hop experiments).
//
// Implementations may be stateful (burst models) but must derive all
// randomness from the *rand.Rand handed to them so runs stay reproducible.
type LossModel interface {
	Drop(from, to int, linkQuality float64, now sim.Time, rng *rand.Rand) bool
}

// NoLoss delivers every packet the topology allows (losses only from link
// quality < 1, if any).
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(_, _ int, linkQuality float64, _ sim.Time, rng *rand.Rand) bool {
	return rng.Float64() >= linkQuality
}

// Bernoulli drops each packet independently with probability P at every
// receiver — the paper's one-hop emulation strategy (§VI-A, following
// SYNAPSE [6]): "packet losses are emulated by each node dropping received
// data, advertisement, or SNACK packets with the same probability p".
type Bernoulli struct {
	P float64
}

// Drop implements LossModel.
func (b Bernoulli) Drop(_, _ int, linkQuality float64, _ sim.Time, rng *rand.Rand) bool {
	if rng.Float64() >= linkQuality {
		return true
	}
	return rng.Float64() < b.P
}

// GilbertElliott is a two-state burst-loss channel, the substitute for the
// paper's meyer-heavy.txt RF noise trace in multi-hop experiments (see
// DESIGN.md §5). Each directed link carries an independent two-state
// continuous-time Markov chain; packets sent while the link is in the Bad
// state are dropped with high probability.
type GilbertElliott struct {
	// LossGood and LossBad are per-packet drop probabilities in each state.
	LossGood, LossBad float64
	// MeanGood and MeanBad are the mean sojourn times of each state.
	MeanGood, MeanBad sim.Time

	states map[linkKey]*geState
}

type linkKey struct{ from, to int }

type geState struct {
	bad     bool
	updated sim.Time
}

// HeavyNoise returns parameters tuned to heavy, bursty interference:
// roughly 25% of time is spent in a bad state where most packets die.
func HeavyNoise() *GilbertElliott {
	return &GilbertElliott{
		LossGood: 0.05,
		LossBad:  0.85,
		MeanGood: 3 * sim.Second,
		MeanBad:  1 * sim.Second,
	}
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(from, to int, linkQuality float64, now sim.Time, rng *rand.Rand) bool {
	if rng.Float64() >= linkQuality {
		return true
	}
	if g.states == nil {
		g.states = make(map[linkKey]*geState)
	}
	key := linkKey{from: from, to: to}
	st, ok := g.states[key]
	if !ok {
		st = &geState{bad: rng.Float64() < g.stationaryBad(), updated: now}
		g.states[key] = st
	}
	g.advance(st, now, rng)
	p := g.LossGood
	if st.bad {
		p = g.LossBad
	}
	return rng.Float64() < p
}

// stationaryBad returns the long-run probability of the bad state.
func (g *GilbertElliott) stationaryBad() float64 {
	mg, mb := g.MeanGood.Seconds(), g.MeanBad.Seconds()
	if mg+mb <= 0 {
		return 0
	}
	return mb / (mg + mb)
}

// advance evolves the two-state CTMC from st.updated to now using the exact
// transient distribution of the chain.
func (g *GilbertElliott) advance(st *geState, now sim.Time, rng *rand.Rand) {
	dt := (now - st.updated).Seconds()
	st.updated = now
	if dt <= 0 {
		return
	}
	lambdaGB := 1 / g.MeanGood.Seconds() // good -> bad rate
	lambdaBG := 1 / g.MeanBad.Seconds()  // bad -> good rate
	total := lambdaGB + lambdaBG
	piBad := lambdaGB / total
	decay := math.Exp(-total * dt)
	var pBad float64
	if st.bad {
		pBad = piBad + (1-piBad)*decay
	} else {
		pBad = piBad - piBad*decay
	}
	st.bad = rng.Float64() < pBad
}
