// Package radio models the wireless broadcast medium: per-node transmit
// serialization at a configurable bit rate, local broadcast to the
// topology's neighbor set, and pluggable loss models.
//
// The model deliberately matches the paper's evaluation methodology rather
// than a full PHY: the one-hop experiments place nodes "close enough to
// eliminate packet transmission errors caused by channel impairments" and
// inject losses at the application layer (§VI-A); multi-hop experiments
// combine distance-based link quality with a bursty noise process.
package radio

import (
	"fmt"
	"math/rand"

	"lrseluge/internal/metrics"
	"lrseluge/internal/obs"
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
	"lrseluge/internal/trace"
)

// Receiver is implemented by protocol nodes attached to the network.
// HandlePacket runs inside the simulation loop; the packet must be treated
// as read-only.
type Receiver interface {
	HandlePacket(from packet.NodeID, p packet.Packet)
}

// Config sets physical-layer parameters. The defaults model a mica2-class
// 19.2 kbps radio.
type Config struct {
	// BitRate is the effective channel rate in bits per second.
	BitRate int
	// PropDelay is the propagation plus processing delay per delivery.
	PropDelay sim.Time
	// InterPacketGap is the idle gap a transmitter leaves between
	// back-to-back packets (MAC spacing/backoff abstraction).
	InterPacketGap sim.Time

	// WireCheck, when true, serializes every delivered packet through its
	// wire format and hands receivers the re-parsed copy. Slower, but it
	// proves in every simulation that the protocols work on exactly what
	// the wire can carry (no accidental reliance on in-memory state).
	WireCheck bool
}

// DefaultConfig returns mica2-like parameters.
func DefaultConfig() Config {
	return Config{
		BitRate:        19200,
		PropDelay:      1 * sim.Millisecond,
		InterPacketGap: 5 * sim.Millisecond,
	}
}

// Network binds a topology, a loss model and attached protocol nodes to a
// simulation engine.
type Network struct {
	eng   *sim.Engine
	graph *topo.Graph
	loss  LossModel
	cfg   Config
	col   *metrics.Collector
	rng   *rand.Rand

	nodes     []Receiver
	busyUntil []sim.Time

	// fault, when installed, wraps loss and silences down nodes (see
	// override.go).
	fault *FaultOverlay

	// batchPool recycles per-transmission delivery scratch buffers.
	// Multiple transmissions can be airborne at once (PropDelay overlaps),
	// so this is a free list, not a single buffer.
	batchPool [][]delivery

	txObs TxObserver

	// tr records packet lifecycle events; nil (the default) disables
	// tracing at one branch per event site.
	tr *trace.Tracer

	// obs attributes delivery fan-out wall time; nil (the default) disables
	// the phase timers at one branch per region boundary.
	obs *obs.Timers
}

// TxObserver sees every packet at the moment its transmission completes,
// before delivery fans out to neighbors. Observers run in global
// transmission order, which makes them suitable for trace hashing in
// reproducibility tests and for packet logging.
type TxObserver func(at sim.Time, from packet.NodeID, p packet.Packet)

// New creates a network over the given topology. Node IDs are topology
// indices; every node must be attached before traffic flows to it.
func New(eng *sim.Engine, graph *topo.Graph, loss LossModel, cfg Config, col *metrics.Collector, seed int64) (*Network, error) {
	if eng == nil || graph == nil || col == nil {
		return nil, fmt.Errorf("radio: nil dependency")
	}
	if loss == nil {
		loss = NoLoss{}
	}
	if cfg.BitRate <= 0 {
		return nil, fmt.Errorf("radio: bit rate must be positive, got %d", cfg.BitRate)
	}
	return &Network{
		eng:       eng,
		graph:     graph,
		loss:      loss,
		cfg:       cfg,
		col:       col,
		rng:       rand.New(rand.NewSource(seed)),
		nodes:     make([]Receiver, graph.NumNodes()),
		busyUntil: make([]sim.Time, graph.NumNodes()),
	}, nil
}

// Attach registers the protocol node for the given topology index.
func (nw *Network) Attach(id packet.NodeID, r Receiver) error {
	if int(id) >= len(nw.nodes) {
		return fmt.Errorf("radio: node id %d outside topology of %d nodes", id, len(nw.nodes))
	}
	if nw.nodes[id] != nil {
		return fmt.Errorf("radio: node id %d already attached", id)
	}
	nw.nodes[id] = r
	return nil
}

// SetTxObserver registers fn to observe every completed transmission.
// Passing nil removes the observer.
func (nw *Network) SetTxObserver(fn TxObserver) { nw.txObs = fn }

// SetTracer installs (or, with nil, removes) the event tracer. Install it
// before traffic flows so traces cover the whole run.
func (nw *Network) SetTracer(tr *trace.Tracer) { nw.tr = tr }

// Tracer returns the installed tracer; nil means tracing is off. Protocol
// nodes pick it up here so one installation covers the whole stack.
func (nw *Network) Tracer() *trace.Tracer { return nw.tr }

// SetObs installs (or, with nil, removes) wall-time phase timers over the
// delivery fan-out. Install before traffic flows so attribution covers the
// whole run.
func (nw *Network) SetObs(t *obs.Timers) { nw.obs = t }

// Obs returns the installed phase timers; nil means attribution is off.
// Protocol nodes pick them up here so one installation covers the stack.
func (nw *Network) Obs() *obs.Timers { return nw.obs }

// Engine returns the simulation engine driving this network.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Collector returns the metrics collector.
func (nw *Network) Collector() *metrics.Collector { return nw.col }

// NumNodes returns the topology size.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// Neighbors returns the topology neighbor list for a node.
func (nw *Network) Neighbors(id packet.NodeID) []topo.Link { return nw.graph.Neighbors(int(id)) }

// Broadcast queues p for local broadcast by node from. The packet occupies
// the sender's radio for WireSize*8/BitRate; delivery to each neighbor is
// subject to the loss model. The call returns immediately (protocol code
// runs inside event callbacks and must not block).
func (nw *Network) Broadcast(from packet.NodeID, p packet.Packet) {
	if int(from) >= len(nw.nodes) {
		panic(fmt.Sprintf("radio: broadcast from unknown node %d", from))
	}
	if nw.fault != nil && nw.fault.NodeDown(int(from)) {
		return // a powered-off mote cannot key its radio
	}
	now := nw.eng.Now()
	start := now
	if nw.busyUntil[from] > start {
		start = nw.busyUntil[from]
	}
	start += nw.cfg.InterPacketGap
	txDur := sim.Time(int64(p.WireSize()) * 8 * int64(sim.Second) / int64(nw.cfg.BitRate))
	done := start + txDur
	nw.busyUntil[from] = done

	nw.eng.At(done, func() {
		if nw.fault != nil && nw.fault.NodeDown(int(from)) {
			return // the sender lost power mid-transmission
		}
		nw.col.RecordTx(from, p)
		nw.tr.Tx(from, p)
		if nw.txObs != nil {
			nw.txObs(nw.eng.Now(), from, p)
		}
		nw.deliver(from, p)
	})
}

// TxBusyUntil reports when the node's transmitter frees up; protocols use it
// to pace multi-packet responses.
func (nw *Network) TxBusyUntil(id packet.NodeID) sim.Time { return nw.busyUntil[id] }

// delivery is one surviving receiver of a transmission, collected into a
// pooled per-transmission batch.
type delivery struct {
	to  int
	rcv Receiver
}

// getBatch hands out a recycled delivery buffer (possibly nil or undersized:
// the caller pre-sizes it from the sender's degree).
func (nw *Network) getBatch() []delivery {
	if n := len(nw.batchPool); n > 0 {
		batch := nw.batchPool[n-1]
		nw.batchPool[n-1] = nil
		nw.batchPool = nw.batchPool[:n-1]
		return batch
	}
	return nil
}

// putBatch returns a delivery buffer to the pool.
func (nw *Network) putBatch(batch []delivery) {
	for i := range batch {
		batch[i] = delivery{}
	}
	nw.batchPool = append(nw.batchPool, batch[:0])
}

func (nw *Network) deliver(from packet.NodeID, p packet.Packet) {
	// Manual End at each exit instead of defer: deliver is on the hot path
	// and defer is banned there (alloc-hotpath lint).
	nw.obs.StartSampled(obs.PhaseRadioDeliver)
	if nw.cfg.WireCheck {
		parsed, err := packet.Unmarshal(p.Marshal())
		if err != nil {
			panic(fmt.Sprintf("radio: packet failed wire round-trip: %v", err))
		}
		p = parsed
	}
	now := nw.eng.Now()
	neighbors := nw.graph.Neighbors(int(from))
	batch := nw.getBatch()
	if cap(batch) < len(neighbors) {
		batch = make([]delivery, 0, len(neighbors))
	}
	for _, link := range neighbors {
		to := link.To
		rcv := nw.nodes[to]
		if rcv == nil {
			continue
		}
		// Fault-blocked deliveries are attributed before the channel model
		// runs, so each drop has exactly one cause in metrics and trace.
		// Blocked deliveries consume no channel randomness either way: the
		// overlay's Drop short-circuits before its inner model, so this
		// pre-check leaves the RNG stream byte-identical.
		if nw.fault != nil && nw.fault.Blocked(int(from), to) {
			nw.fault.countDrop()
			nw.col.RecordFaultDrop()
			nw.tr.Drop(packet.NodeID(to), from, p, trace.DropFault)
			continue
		}
		if nw.loss.Drop(int(from), to, link.Quality, now, nw.rng) {
			nw.col.RecordChannelLoss()
			nw.tr.Drop(packet.NodeID(to), from, p, trace.DropChannel)
			continue
		}
		batch = append(batch, delivery{to: to, rcv: rcv})
	}
	if len(batch) == 0 {
		nw.putBatch(batch)
		nw.obs.EndSampled(obs.PhaseRadioDeliver)
		return
	}
	// One event delivers the whole batch. This is observation-equivalent to
	// one event per receiver: the per-receiver events all carried the same
	// timestamp and consecutive sequence numbers with nothing scheduled
	// between them, so they executed back-to-back in neighbor order — the
	// same order the batch loop uses — and every event a handler schedules
	// draws a later sequence number either way.
	// The batch walk is attributed to radio.deliver too; phases the
	// receiver handlers open (crypt, erasure) nest inside and account their
	// own time exclusively.
	nw.eng.Schedule(nw.cfg.PropDelay, func() {
		nw.obs.StartSampled(obs.PhaseRadioDeliver)
		for _, d := range batch {
			nw.col.RecordRx(p)
			nw.tr.Rx(packet.NodeID(d.to), from, p)
			d.rcv.HandlePacket(from, p)
		}
		nw.putBatch(batch)
		nw.obs.EndSampled(obs.PhaseRadioDeliver)
	})
	nw.obs.EndSampled(obs.PhaseRadioDeliver)
}
