package radio

import (
	"fmt"
	"math/rand"
	"testing"

	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

// countingLoss counts delegated Drop calls, proving the overlay consumes no
// inner randomness for blocked deliveries.
type countingLoss struct {
	calls int
	drop  bool
}

func (c *countingLoss) Drop(_, _ int, _ float64, _ sim.Time, _ *rand.Rand) bool {
	c.calls++
	return c.drop
}

func newOverlayUnderTest(t *testing.T, nodes int, inner LossModel) (*Network, *FaultOverlay) {
	t.Helper()
	eng := sim.New()
	g, err := topo.Complete(nodes)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(eng, g, inner, DefaultConfig(), metrics.New(), 5)
	if err != nil {
		t.Fatal(err)
	}
	return nw, nw.InstallFaultOverlay()
}

func TestInstallFaultOverlayIdempotent(t *testing.T) {
	nw, ov := newOverlayUnderTest(t, 3, nil)
	if nw.InstallFaultOverlay() != ov {
		t.Fatal("second install returned a different overlay")
	}
	if ov.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", ov.NumNodes())
	}
}

func TestOverlayBlocking(t *testing.T) {
	inner := &countingLoss{}
	_, ov := newOverlayUnderTest(t, 5, inner)
	rng := rand.New(rand.NewSource(1))

	if ov.Drop(0, 1, 1, 0, rng) {
		t.Fatal("no fault active but delivery dropped")
	}
	if inner.calls != 1 {
		t.Fatalf("inner model not consulted: calls=%d", inner.calls)
	}

	// Down endpoints block both directions of every link touching the node.
	ov.SetNodeDown(1, true)
	if !ov.Blocked(0, 1) || !ov.Blocked(1, 0) || ov.Blocked(0, 2) {
		t.Fatal("node-down blocking wrong")
	}
	if !ov.Drop(0, 1, 1, 0, rng) {
		t.Fatal("delivery to a down node not dropped")
	}
	if inner.calls != 1 {
		t.Fatal("blocked delivery consumed inner randomness")
	}
	ov.SetNodeDown(1, false)
	if ov.Blocked(0, 1) {
		t.Fatal("node still blocked after power-on")
	}

	// Directed link outages block only the listed direction.
	ov.SetLinkDown(2, 3, true)
	if !ov.Blocked(2, 3) || ov.Blocked(3, 2) {
		t.Fatal("directed link outage wrong")
	}
	ov.SetLinkDown(2, 3, false)
	if ov.Blocked(2, 3) {
		t.Fatal("link still blocked after window closed")
	}

	// Partitions block across cells only; unlisted nodes share the remainder
	// cell.
	ov.SetPartition([][]int{{0, 1}, {2}})
	if ov.Blocked(0, 1) || !ov.Blocked(0, 2) || !ov.Blocked(2, 3) || ov.Blocked(3, 4) {
		t.Fatal("partition cells wrong")
	}
	ov.ClearPartition()
	if ov.Blocked(0, 2) {
		t.Fatal("partition survives heal")
	}

	if got := ov.FaultDrops(); got != 1 {
		t.Fatalf("FaultDrops = %d, want 1", got)
	}

	// Out-of-range ids never block (and never panic).
	ov.SetNodeDown(99, true)
	if ov.Blocked(99, 0) || ov.Blocked(0, 99) {
		t.Fatal("out-of-range id blocked")
	}
}

// TestOverlaySilencesDownSender checks the radio-level integration: a down
// node neither starts transmissions nor completes in-flight ones.
func TestOverlaySilencesDownSender(t *testing.T) {
	nw, ov := newOverlayUnderTest(t, 2, nil)
	eng := nw.Engine()
	got := 0
	if err := nw.Attach(1, receiverFunc(func(packet.NodeID, packet.Packet) { got++ })); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(0, receiverFunc(func(packet.NodeID, packet.Packet) {})); err != nil {
		t.Fatal(err)
	}
	adv := &packet.Adv{Src: 0, Version: 1}

	// Down before keying: nothing is sent.
	ov.SetNodeDown(0, true)
	nw.Broadcast(0, adv)
	eng.Run(sim.Second)
	if got != 0 {
		t.Fatalf("down sender delivered %d packets", got)
	}

	// Power lost mid-transmission: the packet dies on the air.
	ov.SetNodeDown(0, false)
	nw.Broadcast(0, adv)
	eng.At(eng.Now()+sim.Millisecond, func() { ov.SetNodeDown(0, true) })
	eng.Run(eng.Now() + sim.Second)
	if got != 0 {
		t.Fatalf("mid-transmission crash still delivered %d packets", got)
	}

	// Back up: traffic flows again.
	ov.SetNodeDown(0, false)
	nw.Broadcast(0, adv)
	eng.Run(eng.Now() + sim.Second)
	if got != 1 {
		t.Fatalf("recovered sender delivered %d packets, want 1", got)
	}
}

type receiverFunc func(packet.NodeID, packet.Packet)

func (f receiverFunc) HandlePacket(from packet.NodeID, p packet.Packet) { f(from, p) }

func TestSetPartitionEpochSemantics(t *testing.T) {
	_, ov := newOverlayUnderTest(t, 6, nil)

	// First partition: {0,1} | {2,3}, nodes 4 and 5 in the remainder cell.
	ov.SetPartition([][]int{{0, 1}, {2, 3}})
	if ov.Blocked(0, 1) || ov.Blocked(2, 3) || ov.Blocked(4, 5) {
		t.Fatal("intra-cell delivery blocked")
	}
	if !ov.Blocked(0, 2) || !ov.Blocked(1, 4) || !ov.Blocked(3, 5) {
		t.Fatal("cross-cell delivery not blocked")
	}

	// Re-partition without clearing: stale stamps from the first partition
	// must fall back to the new remainder cell, not keep their old group.
	ov.SetPartition([][]int{{0, 2}})
	if ov.Blocked(0, 2) {
		t.Fatal("intra-cell delivery blocked after re-partition")
	}
	if !ov.Blocked(0, 1) {
		t.Fatal("node 1 kept its stale cell across re-partition")
	}
	if ov.Blocked(1, 3) || ov.Blocked(1, 5) {
		t.Fatal("unlisted nodes should share the remainder cell")
	}

	ov.ClearPartition()
	if ov.Blocked(0, 1) {
		t.Fatal("healed partition still blocks")
	}
}

// TestSetPartitionAllocFree pins the epoch-stamping rewrite: installing a
// partition touches only the listed nodes and allocates nothing, so a fault
// plan that re-partitions every round stays O(listed) per event even on a
// 100k-node topology.
func TestSetPartitionAllocFree(t *testing.T) {
	ov := newFaultOverlay(nil, 100000)
	groups := [][]int{{1, 2, 3}, {4, 5, 6}}
	if avg := testing.AllocsPerRun(100, func() { ov.SetPartition(groups) }); avg != 0 {
		t.Fatalf("SetPartition allocates %v times per call, want 0", avg)
	}
}

func BenchmarkSetPartition(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		ov := newFaultOverlay(nil, n)
		groups := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ov.SetPartition(groups)
			}
		})
	}
}
