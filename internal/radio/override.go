package radio

import (
	"math/rand"

	"lrseluge/internal/sim"
)

// FaultOverlay is a link-override layer the fault engine toggles: it wraps
// (not replaces) the network's LossModel, deterministically dropping every
// delivery that a current fault forbids — a down endpoint, an open link
// outage window, or a partition boundary — and delegating everything else to
// the wrapped channel model. Blocked deliveries never consume the inner
// model's randomness, so a faulted run stays reproducible for a fixed plan.
type FaultOverlay struct {
	inner    LossModel
	numNodes int

	down     []bool
	linkDown map[linkKey]bool

	// partition assignment: group[id] is the node's cell, valid only while
	// partitioned and only when groupEpoch[id] matches the current epoch.
	// Nodes whose stamp is stale were not listed in any Partition group and
	// share the implicit remainder cell — the epoch stamp makes SetPartition
	// O(listed nodes) instead of an O(topology) reset per fault event.
	partitioned bool
	group       []int
	groupEpoch  []int
	curEpoch    int
	restCell    int

	faultDrops int64
}

// newFaultOverlay wraps inner for a topology of numNodes nodes.
func newFaultOverlay(inner LossModel, numNodes int) *FaultOverlay {
	return &FaultOverlay{
		inner:      inner,
		numNodes:   numNodes,
		down:       make([]bool, numNodes),
		linkDown:   make(map[linkKey]bool),
		group:      make([]int, numNodes),
		groupEpoch: make([]int, numNodes),
	}
}

// InstallFaultOverlay wraps the network's loss model in a fault overlay and
// returns it; repeated calls return the already-installed overlay.
func (nw *Network) InstallFaultOverlay() *FaultOverlay {
	if nw.fault == nil {
		nw.fault = newFaultOverlay(nw.loss, len(nw.nodes))
		nw.loss = nw.fault
	}
	return nw.fault
}

// NumNodes returns the topology size the overlay guards.
func (o *FaultOverlay) NumNodes() int { return o.numNodes }

// SetNodeDown marks a node as powered off (true) or back on (false). A down
// node neither transmits nor receives.
func (o *FaultOverlay) SetNodeDown(id int, down bool) {
	if id >= 0 && id < o.numNodes {
		o.down[id] = down
	}
}

// NodeDown reports whether a node is currently powered off.
func (o *FaultOverlay) NodeDown(id int) bool {
	return id >= 0 && id < o.numNodes && o.down[id]
}

// SetLinkDown opens (true) or closes (false) an outage window on the
// directed link from->to.
func (o *FaultOverlay) SetLinkDown(from, to int, down bool) {
	key := linkKey{from: from, to: to}
	if down {
		o.linkDown[key] = true
	} else {
		delete(o.linkDown, key)
	}
}

// SetPartition cuts the network along the given node-set boundary: packets
// cross cells only after ClearPartition. Nodes listed in groups[i] join cell
// i; unlisted nodes share the implicit remainder cell.
func (o *FaultOverlay) SetPartition(groups [][]int) {
	o.curEpoch++
	o.restCell = len(groups)
	for gi, g := range groups {
		for _, id := range g {
			if id >= 0 && id < o.numNodes {
				o.group[id] = gi
				o.groupEpoch[id] = o.curEpoch
			}
		}
	}
	o.partitioned = true
}

// cellOf resolves a node's partition cell: its stamped group when listed in
// the current partition, the remainder cell otherwise.
func (o *FaultOverlay) cellOf(id int) int {
	if o.groupEpoch[id] == o.curEpoch {
		return o.group[id]
	}
	return o.restCell
}

// ClearPartition heals the current partition.
func (o *FaultOverlay) ClearPartition() { o.partitioned = false }

// Blocked reports whether a current fault forbids delivery from->to.
func (o *FaultOverlay) Blocked(from, to int) bool {
	if o.NodeDown(from) || o.NodeDown(to) {
		return true
	}
	if len(o.linkDown) > 0 && o.linkDown[linkKey{from: from, to: to}] {
		return true
	}
	if o.partitioned && from >= 0 && from < o.numNodes && to >= 0 && to < o.numNodes &&
		o.cellOf(from) != o.cellOf(to) {
		return true
	}
	return false
}

// FaultDrops returns how many delivery attempts the overlay blocked. The
// network attributes each drop to exactly one cause: fault-blocked
// deliveries are counted here (and in the collector's fault-drop counter),
// never in the channel-loss total.
func (o *FaultOverlay) FaultDrops() int64 { return o.faultDrops }

// countDrop accounts one blocked delivery attributed by the network's
// pre-check, which bypasses Drop to keep the attribution single-sourced.
func (o *FaultOverlay) countDrop() { o.faultDrops++ }

// Drop implements LossModel: block if a fault forbids the delivery,
// otherwise delegate to the wrapped channel model.
func (o *FaultOverlay) Drop(from, to int, linkQuality float64, now sim.Time, rng *rand.Rand) bool {
	if o.Blocked(from, to) {
		o.faultDrops++
		return true
	}
	return o.inner.Drop(from, to, linkQuality, now, rng)
}
