package radio

import (
	"testing"

	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

type recorder struct {
	got []packet.Packet
	at  []sim.Time
	eng *sim.Engine
}

func (r *recorder) HandlePacket(_ packet.NodeID, p packet.Packet) {
	r.got = append(r.got, p)
	if r.eng != nil {
		r.at = append(r.at, r.eng.Now())
	}
}

func newTestNet(t *testing.T, nodes int, loss LossModel) (*Network, *sim.Engine, []*recorder, *metrics.Collector) {
	t.Helper()
	eng := sim.New()
	col := metrics.New()
	g, err := topo.Complete(nodes)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(eng, g, loss, DefaultConfig(), col, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*recorder, nodes)
	for i := range recs {
		recs[i] = &recorder{eng: eng}
		if err := nw.Attach(packet.NodeID(i), recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return nw, eng, recs, col
}

func adv(src packet.NodeID) *packet.Adv {
	return &packet.Adv{Src: src, Version: 1, Units: 1}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	nw, eng, recs, col := newTestNet(t, 4, NoLoss{})
	nw.Broadcast(0, adv(0))
	eng.RunUntilIdle()
	if len(recs[0].got) != 0 {
		t.Fatal("sender received its own broadcast")
	}
	for i := 1; i < 4; i++ {
		if len(recs[i].got) != 1 {
			t.Fatalf("node %d got %d packets", i, len(recs[i].got))
		}
	}
	if col.Tx(packet.TypeAdv) != 1 || col.Rx(packet.TypeAdv) != 3 {
		t.Fatalf("metrics wrong: tx=%d rx=%d", col.Tx(packet.TypeAdv), col.Rx(packet.TypeAdv))
	}
}

func TestSerializationDelay(t *testing.T) {
	nw, eng, recs, _ := newTestNet(t, 2, NoLoss{})
	p := adv(0)
	nw.Broadcast(0, p)
	eng.RunUntilIdle()
	cfg := DefaultConfig()
	wantMin := sim.Time(int64(p.WireSize())*8*int64(sim.Second)/int64(cfg.BitRate)) + cfg.InterPacketGap + cfg.PropDelay
	if len(recs[1].at) != 1 || recs[1].at[0] != wantMin {
		t.Fatalf("delivery at %v, want %v", recs[1].at, wantMin)
	}
}

func TestBackToBackTransmissionsQueue(t *testing.T) {
	nw, eng, recs, _ := newTestNet(t, 2, NoLoss{})
	nw.Broadcast(0, adv(0))
	nw.Broadcast(0, adv(0))
	eng.RunUntilIdle()
	if len(recs[1].at) != 2 {
		t.Fatalf("got %d deliveries", len(recs[1].at))
	}
	if recs[1].at[1] <= recs[1].at[0] {
		t.Fatal("second packet not serialized after the first")
	}
	gap := recs[1].at[1] - recs[1].at[0]
	p := adv(0)
	airtime := sim.Time(int64(p.WireSize()) * 8 * int64(sim.Second) / int64(DefaultConfig().BitRate))
	if gap < airtime {
		t.Fatalf("packets overlapped: gap %v < airtime %v", gap, airtime)
	}
}

func TestBernoulliLossRate(t *testing.T) {
	nw, eng, recs, col := newTestNet(t, 2, Bernoulli{P: 0.3})
	const trials = 2000
	for i := 0; i < trials; i++ {
		nw.Broadcast(0, adv(0))
	}
	eng.RunUntilIdle()
	got := float64(len(recs[1].got)) / trials
	if got < 0.65 || got > 0.75 {
		t.Fatalf("delivery rate %f, want ~0.70", got)
	}
	if col.ChannelLosses() == 0 {
		t.Fatal("losses not recorded")
	}
}

func TestNoLossModelHonorsLinkQuality(t *testing.T) {
	eng := sim.New()
	col := metrics.New()
	g, _ := topo.Grid(1, 2, topo.Medium) // 20 units apart: quality < 1
	nw, err := New(eng, g, NoLoss{}, DefaultConfig(), col, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := &recorder{}
	if err := nw.Attach(0, &recorder{}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(1, r); err != nil {
		t.Fatal(err)
	}
	const trials = 2000
	for i := 0; i < trials; i++ {
		nw.Broadcast(0, adv(0))
	}
	eng.RunUntilIdle()
	rate := float64(len(r.got)) / trials
	if rate > 0.999 || rate < 0.5 {
		t.Fatalf("delivery rate %f; expected sub-1.0 from link quality", rate)
	}
}

func TestGilbertElliottProducesBurstyLoss(t *testing.T) {
	nw, eng, recs, _ := newTestNet(t, 2, HeavyNoise())
	const trials = 5000
	for i := 0; i < trials; i++ {
		nw.Broadcast(0, adv(0))
	}
	eng.RunUntilIdle()
	rate := float64(len(recs[1].got)) / trials
	// Stationary: ~75% good (5% loss), ~25% bad (85% loss) => ~24% loss.
	if rate < 0.6 || rate > 0.9 {
		t.Fatalf("delivery rate %f outside bursty-model expectation", rate)
	}
}

func TestAttachErrors(t *testing.T) {
	eng := sim.New()
	col := metrics.New()
	g, _ := topo.Complete(2)
	nw, _ := New(eng, g, nil, DefaultConfig(), col, 1)
	if err := nw.Attach(5, &recorder{}); err == nil {
		t.Fatal("out-of-range attach accepted")
	}
	if err := nw.Attach(0, &recorder{}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(0, &recorder{}); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.New()
	col := metrics.New()
	g, _ := topo.Complete(2)
	if _, err := New(nil, g, nil, DefaultConfig(), col, 1); err == nil {
		t.Fatal("nil engine accepted")
	}
	bad := DefaultConfig()
	bad.BitRate = 0
	if _, err := New(eng, g, nil, bad, col, 1); err == nil {
		t.Fatal("zero bit rate accepted")
	}
}

func TestUnattachedNodesSkipped(t *testing.T) {
	eng := sim.New()
	col := metrics.New()
	g, _ := topo.Complete(3)
	nw, _ := New(eng, g, nil, DefaultConfig(), col, 1)
	r := &recorder{}
	if err := nw.Attach(0, r); err != nil {
		t.Fatal(err)
	}
	// Nodes 1 and 2 never attached: broadcast must not panic.
	nw.Broadcast(0, adv(0))
	eng.RunUntilIdle()
}

// sink is a no-op receiver for allocation measurements.
type sink struct{}

func (sink) HandlePacket(packet.NodeID, packet.Packet) {}

// TestBroadcastAllocs pins the steady-state allocation cost of a broadcast:
// one pooled timer-free tx-complete closure plus one batched delivery event
// reusing a pooled scratch buffer — NOT one closure per neighbor.
func TestBroadcastAllocs(t *testing.T) {
	eng := sim.New()
	col := metrics.New()
	g, err := topo.Complete(9) // degree 8: per-neighbor allocation would show up 8x
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(eng, g, NoLoss{}, DefaultConfig(), col, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := nw.Attach(packet.NodeID(i), sink{}); err != nil {
			t.Fatal(err)
		}
	}
	p := adv(0)
	// Warm the timer pool and the delivery batch pool.
	for i := 0; i < 8; i++ {
		nw.Broadcast(0, p)
		eng.RunUntilIdle()
	}
	allocs := testing.AllocsPerRun(50, func() {
		nw.Broadcast(0, p)
		eng.RunUntilIdle()
	})
	// Two closures per broadcast (tx-complete + delivery batch); everything
	// else (timer records, delivery scratch) comes from pools.
	if allocs > 2 {
		t.Fatalf("broadcast allocated %.1f times, want <= 2", allocs)
	}
}
