package radio

import (
	"fmt"
	"math/rand"

	"lrseluge/internal/sim"
)

// Trace is a time series of loss probabilities sampled at a fixed interval,
// the shape of an empirical RF noise trace. The paper's multi-hop
// experiments replay TOSSIM's meyer-heavy.txt; this type lets experiments
// replay any such series (or a synthetic equivalent) deterministically.
type Trace struct {
	// Interval is the sampling period of the series.
	Interval sim.Time
	// Loss holds the per-interval loss probabilities in [0, 1].
	Loss []float64
}

// Validate reports structural errors.
func (tr Trace) Validate() error {
	if tr.Interval <= 0 {
		return fmt.Errorf("radio: trace interval must be positive")
	}
	if len(tr.Loss) == 0 {
		return fmt.Errorf("radio: empty trace")
	}
	for i, p := range tr.Loss {
		if p < 0 || p > 1 {
			return fmt.Errorf("radio: trace sample %d = %f outside [0,1]", i, p)
		}
	}
	return nil
}

// At returns the loss probability in effect at virtual time t. The trace
// wraps around when the simulation outlives it, as noise-trace replay tools
// conventionally do.
func (tr Trace) At(t sim.Time) float64 {
	if len(tr.Loss) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	idx := int(t/tr.Interval) % len(tr.Loss)
	return tr.Loss[idx]
}

// Duration returns the trace's total covered time before wrapping.
func (tr Trace) Duration() sim.Time { return tr.Interval * sim.Time(len(tr.Loss)) }

// SyntheticHeavyTrace generates a bursty loss series with the
// characteristics of a heavy-interference environment: a two-state process
// alternating between mild background loss and noise bursts in which most
// packets die. It is the deterministic, replayable counterpart of the
// GilbertElliott model (DESIGN.md §5).
func SyntheticHeavyTrace(samples int, interval sim.Time, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	loss := make([]float64, samples)
	bad := false
	for i := range loss {
		if bad {
			loss[i] = 0.7 + 0.3*rng.Float64()
			if rng.Float64() < 0.25 { // mean burst ~4 samples
				bad = false
			}
		} else {
			loss[i] = 0.02 + 0.08*rng.Float64()
			if rng.Float64() < 0.08 { // mean quiet period ~12 samples
				bad = true
			}
		}
	}
	return Trace{Interval: interval, Loss: loss}
}

// TraceLoss replays a Trace as a LossModel: every link experiences the
// trace's loss probability for the current instant, on top of the
// topology's base link quality. All links share the trace (ambient
// interference), matching how TOSSIM applies a noise trace network-wide.
type TraceLoss struct {
	Trace Trace
}

// Drop implements LossModel.
func (t TraceLoss) Drop(_, _ int, linkQuality float64, now sim.Time, rng *rand.Rand) bool {
	if rng.Float64() >= linkQuality {
		return true
	}
	return rng.Float64() < t.Trace.At(now)
}
