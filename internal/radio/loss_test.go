package radio

import (
	"math"
	"math/rand"
	"testing"

	"lrseluge/internal/sim"
)

func TestNoLossEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NoLoss{}
	for i := 0; i < 1000; i++ {
		if m.Drop(0, 1, 1.0, 0, rng) {
			t.Fatal("NoLoss dropped a packet on a perfect link")
		}
	}
	for i := 0; i < 1000; i++ {
		if !m.Drop(0, 1, 0.0, 0, rng) {
			t.Fatal("NoLoss delivered a packet on a zero-quality link")
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if m := (Bernoulli{P: 0}); m.Drop(0, 1, 1.0, 0, rng) {
		t.Fatal("Bernoulli{0} dropped on a perfect link")
	}
	m := Bernoulli{P: 1}
	for i := 0; i < 100; i++ {
		if !m.Drop(0, 1, 1.0, 0, rng) {
			t.Fatal("Bernoulli{1} delivered a packet")
		}
	}
	// Empirical rate close to P on a perfect link.
	m = Bernoulli{P: 0.3}
	drops := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if m.Drop(0, 1, 1.0, 0, rng) {
			drops++
		}
	}
	got := float64(drops) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bernoulli{0.3} empirical drop rate %v", got)
	}
}

// TestGilbertElliottStationaryBad checks the analytical stationary bad-state
// probability and that the empirical drop rate over a long horizon matches
// the mixture piBad*LossBad + (1-piBad)*LossGood.
func TestGilbertElliottStationaryBad(t *testing.T) {
	g := &GilbertElliott{
		LossGood: 0.05,
		LossBad:  0.85,
		MeanGood: 3 * sim.Second,
		MeanBad:  1 * sim.Second,
	}
	piBad := g.stationaryBad()
	if want := 1.0 / 4.0; math.Abs(piBad-want) > 1e-12 {
		t.Fatalf("stationaryBad = %v, want %v (MeanBad/(MeanGood+MeanBad))", piBad, want)
	}
	if (&GilbertElliott{}).stationaryBad() != 0 {
		t.Fatal("degenerate chain must report zero bad probability")
	}

	rng := rand.New(rand.NewSource(3))
	drops := 0
	const trials = 60000
	// Sample every 100 ms so the chain decorrelates between visits but still
	// spends realistic sojourns in each state.
	for i := 0; i < trials; i++ {
		if g.Drop(0, 1, 1.0, sim.Time(i)*100*sim.Millisecond, rng) {
			drops++
		}
	}
	want := piBad*g.LossBad + (1-piBad)*g.LossGood // 0.25*0.85 + 0.75*0.05 = 0.25
	got := float64(drops) / trials
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical drop rate %v, want ~%v", got, want)
	}
}

// TestGilbertElliottPerLinkIndependence checks that each directed link
// carries its own chain: freezing one link in the bad state must not affect
// another link's state.
func TestGilbertElliottPerLinkIndependence(t *testing.T) {
	g := &GilbertElliott{
		LossGood: 0,
		LossBad:  1,
		MeanGood: 1000000 * sim.Second, // effectively frozen states
		MeanBad:  1000000 * sim.Second,
	}
	rng := rand.New(rand.NewSource(4))
	// Seed many links; with piBad = 0.5 and frozen sojourns, some links start
	// (and stay) bad while others start (and stay) good.
	bad, good := 0, 0
	for to := 1; to <= 64; to++ {
		if g.Drop(0, to, 1.0, 0, rng) {
			bad++
		} else {
			good++
		}
	}
	if bad == 0 || good == 0 {
		t.Fatalf("expected a mix of frozen states across links, got bad=%d good=%d", bad, good)
	}
	// The same links re-sampled immediately must repeat their state: the
	// chains are per-link, not shared.
	for round := 0; round < 3; round++ {
		b2, g2 := 0, 0
		for to := 1; to <= 64; to++ {
			if g.Drop(0, to, 1.0, sim.Time(round)*sim.Millisecond, rng) {
				b2++
			} else {
				g2++
			}
		}
		if b2 != bad || g2 != good {
			t.Fatalf("link states leaked across links: round %d bad=%d good=%d, want %d/%d", round, b2, g2, bad, good)
		}
	}
	// Reverse direction is an independent chain: its state was never seeded
	// by the forward draws above, so the map must gain new entries.
	before := len(g.states)
	g.Drop(1, 0, 1.0, 0, rng)
	if len(g.states) != before+1 {
		t.Fatal("reverse link shares the forward link's chain")
	}
}
