// Package lrseluge's benchmark harness: one benchmark per table and figure
// of the paper's evaluation (§V-VI), plus the security and scheduler
// ablations. Each benchmark runs the same code path as cmd/figures at a
// reduced default scale (so `go test -bench=.` completes in minutes) and
// reports the headline series through b.ReportMetric; set
// LRSELUGE_BENCH_FULL=1 for the paper-scale parameters.
//
// The reported custom metrics use the paper's units:
//
//	data/run   - data-packet transmissions
//	snack/run  - SNACK transmissions
//	adv/run    - advertisement transmissions
//	bytes/run  - total communication cost in bytes
//	lat-s/run  - dissemination latency in seconds
package lrseluge

import (
	"os"
	"testing"
)

func benchFull() bool { return os.Getenv("LRSELUGE_BENCH_FULL") != "" }

func benchImageSize() int {
	if benchFull() {
		return 20 * 1024
	}
	return 8 * 1024
}

func benchReceivers() int {
	if benchFull() {
		return 20
	}
	return 10
}

func reportAvg(b *testing.B, name string, r AvgResult) {
	b.ReportMetric(r.DataPkts, name+"-data/run")
	b.ReportMetric(r.SnackPkts, name+"-snack/run")
	b.ReportMetric(r.TotalBytes, name+"-bytes/run")
	b.ReportMetric(r.LatencySec, name+"-lat-s/run")
	if !r.ImagesOK {
		b.Fatalf("%s: image verification failed", name)
	}
}

// BenchmarkFig3a regenerates Fig. 3(a): data packets for one page versus the
// packet-loss rate (analysis and simulation, Seluge vs LR-Seluge).
func BenchmarkFig3a(b *testing.B) {
	ps := []float64{0.1, 0.3}
	if benchFull() {
		ps = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	for i := 0; i < b.N; i++ {
		pts, err := Fig3LossSweep(DefaultParams(), 10, ps, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.SelugeAnalysis, "seluge-analysis/page")
		b.ReportMetric(last.ACKLRAnalysis, "acklr-analysis/page")
		b.ReportMetric(last.SelugeSim, "seluge-sim/page")
		b.ReportMetric(last.LRSim, "lr-sim/page")
	}
}

// BenchmarkFig3b regenerates Fig. 3(b): data packets for one page versus the
// number of receivers at p = 0.2.
func BenchmarkFig3b(b *testing.B) {
	ns := []int{5, 20}
	if benchFull() {
		ns = []int{2, 5, 10, 15, 20, 25, 30, 35, 40}
	}
	for i := 0; i < b.N; i++ {
		pts, err := Fig3ReceiverSweep(DefaultParams(), ns, 0.2, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.SelugeSim, "seluge-sim/page")
		b.ReportMetric(last.LRSim, "lr-sim/page")
	}
}

// BenchmarkFig4 regenerates Fig. 4(a)-(e): the five metrics versus the
// packet-loss rate for N receivers and a code image.
func BenchmarkFig4(b *testing.B) {
	ps := []float64{0.1, 0.3}
	if benchFull() {
		ps = []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4}
	}
	for i := 0; i < b.N; i++ {
		pts, err := Fig4LossImpact(DefaultParams(), benchImageSize(), benchReceivers(), ps, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		reportAvg(b, "seluge", last.Seluge)
		reportAvg(b, "lr", last.LR)
	}
}

// BenchmarkFig5 regenerates Fig. 5(a)-(e): the five metrics versus the
// number of local receivers at p = 0.1.
func BenchmarkFig5(b *testing.B) {
	ns := []int{5, 20}
	if benchFull() {
		ns = []int{5, 10, 20, 30, 40}
	}
	for i := 0; i < b.N; i++ {
		pts, err := Fig5DensityImpact(DefaultParams(), benchImageSize(), ns, 0.1, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		reportAvg(b, "seluge", last.Seluge)
		reportAvg(b, "lr", last.LR)
	}
}

// BenchmarkFig6 regenerates Fig. 6(a)-(e): the impact of the erasure-coding
// rate n/k on LR-Seluge (k fixed at 32).
func BenchmarkFig6(b *testing.B) {
	ns := []int{40, 56}
	ps := []float64{0.1}
	if benchFull() {
		ns = []int{32, 40, 48, 56, 64, 72}
		ps = []float64{0.05, 0.1, 0.2}
	}
	for i := 0; i < b.N; i++ {
		pts, err := Fig6RateImpact(DefaultParams().PacketPayload, 32, benchImageSize(), benchReceivers(), ns, ps, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		reportAvg(b, "lr", last.LR)
	}
}

func benchGrid(b *testing.B, density GridDensity) {
	rows, cols := 7, 7
	if benchFull() {
		rows, cols = 15, 15
	}
	for i := 0; i < b.N; i++ {
		sel, lr, err := MultiHopComparison(DefaultParams(), benchImageSize(), density, rows, cols, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reportAvg(b, "seluge", sel)
		reportAvg(b, "lr", lr)
	}
}

// BenchmarkTableII regenerates Table II: Seluge vs LR-Seluge on the
// high-density (tight) grid under heavy bursty noise.
func BenchmarkTableII(b *testing.B) { benchGrid(b, Tight) }

// BenchmarkTableIII regenerates Table III: Seluge vs LR-Seluge on the
// low-density (medium) grid under heavy bursty noise.
func BenchmarkTableIII(b *testing.B) { benchGrid(b, Medium) }

// BenchmarkAttackResilience regenerates the §IV-E security experiments:
// forged-data injection, signature flooding (weak and brute-forced) and the
// denial-of-receipt attack with and without the serve-limit defense.
func BenchmarkAttackResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := AttackResilience(DefaultParams(), benchImageSize()/2, benchReceivers(), 0.1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if report.Injection.ForgedAccepted != 0 {
			b.Fatalf("forged packet accepted")
		}
		b.ReportMetric(float64(report.Injection.AuthDrops), "auth-drops/run")
		b.ReportMetric(float64(report.SigFlood.PuzzleRejects), "puzzle-rejects/run")
		b.ReportMetric(float64(report.SigFlood.SigVerifications), "weak-flood-verifications/run")
		b.ReportMetric(float64(report.SigFloodStrong.SigVerifications), "strong-flood-verifications/run")
		b.ReportMetric(float64(report.DoRVictimTxNoDefense), "dor-victim-tx-nodefense/run")
		b.ReportMetric(float64(report.DoRVictimTxDefense), "dor-victim-tx-defense/run")
	}
}

// BenchmarkSchedulerAblation quantifies the contribution of the greedy
// round-robin scheduler (§IV-D.3) against the union-of-requests and
// fresh-packet policies on the same LR-Seluge scenario.
func BenchmarkSchedulerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := SchedulerAblationRun(DefaultParams(), benchImageSize(), benchReceivers(), 0.2, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		for policy, avg := range res {
			b.ReportMetric(avg.DataPkts, policy.String()+"-data/run")
		}
	}
}

// BenchmarkOneHopDissemination is a plain end-to-end throughput benchmark of
// the core protocol path (no sweep): one LR-Seluge run per iteration.
func BenchmarkOneHopDissemination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Scenario{
			Protocol:  LRSeluge,
			ImageSize: benchImageSize(),
			Receivers: benchReceivers(),
			LossP:     0.1,
			Seed:      int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != res.Nodes {
			b.Fatalf("incomplete run: %d/%d", res.Completed, res.Nodes)
		}
	}
}
